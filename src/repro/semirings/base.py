"""Core semiring protocol.

A semiring ``(S, ⊕, ⊗, 0, 1)`` consists of a commutative additive monoid
``(S, ⊕, 0)`` and a multiplicative monoid ``(S, ⊗, 1)`` where ``⊗``
distributes over ``⊕`` and ``0`` annihilates.  Sparse matrices over a
semiring treat *structural zeros* as the additive neutral element ``0``
(e.g. ``+inf`` for ``(min, +)``), exactly as described in Section III of the
paper.

The implementation is deliberately NumPy-first: ``add`` and ``mul`` must be
NumPy ufuncs (or ufunc-like callables supporting ``reduceat`` /
``reduce``) so that the Gustavson accumulation in
:mod:`repro.sparse.spgemm_local` can merge duplicate column indices without
Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["Semiring", "SemiringError"]


class SemiringError(ValueError):
    """Raised when an operation is incompatible with the chosen semiring.

    Typical causes: requesting the *algebraic* dynamic-SpGEMM path for an
    update that cannot be expressed as semiring addition (e.g. a deletion
    under ``(min, +)``), or asking for an additive inverse in a semiring
    that is not a ring.
    """


@dataclass(frozen=True)
class Semiring:
    """A vectorised semiring.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"plus_times"``.
    add:
        Binary NumPy ufunc implementing the additive monoid operation.
    mul:
        Binary NumPy ufunc implementing the multiplicative monoid operation.
    zero:
        Additive neutral element (value of structural zeros).
    one:
        Multiplicative neutral element.
    dtype:
        Preferred NumPy dtype for values of matrices over this semiring.
    is_ring:
        ``True`` when every element has an additive inverse (then *all*
        updates are algebraic updates, cf. Section V).
    negate:
        Additive inversion callable; required when ``is_ring`` is ``True``.
    is_idempotent:
        ``True`` when ``a ⊕ a = a`` (e.g. ``min``, ``max``, ``or``).  Used by
        tests and by the general-update algorithm to reason about when the
        algebraic shortcut is still valid.
    """

    name: str
    add: np.ufunc
    mul: np.ufunc
    zero: float
    one: float
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))
    is_ring: bool = False
    negate: Callable[[np.ndarray], np.ndarray] | None = None
    is_idempotent: bool = False

    # ------------------------------------------------------------------
    # Scalar / array operations
    # ------------------------------------------------------------------
    def plus(self, a, b):
        """Semiring addition ``a ⊕ b`` (element-wise for arrays)."""
        return self.add(a, b)

    def times(self, a, b):
        """Semiring multiplication ``a ⊗ b`` (element-wise for arrays)."""
        return self.mul(a, b)

    def additive_inverse(self, a):
        """Return ``⊖a`` such that ``a ⊕ (⊖a) = 0``.

        Raises
        ------
        SemiringError
            If the semiring is not a ring.
        """
        if not self.is_ring or self.negate is None:
            raise SemiringError(
                f"semiring {self.name!r} is not a ring; additive inverses "
                "do not exist (use the general-update algorithm instead)"
            )
        return self.negate(np.asarray(a, dtype=self.dtype))

    def is_zero(self, a) -> np.ndarray:
        """Element-wise test for the additive neutral element.

        Handles ``±inf`` zeros (``min``/``max`` based semirings) as well as
        ordinary numeric zeros.
        """
        arr = np.asarray(a, dtype=self.dtype)
        if np.isinf(self.zero):
            return np.isinf(arr) & (np.sign(arr) == np.sign(self.zero))
        return arr == self.zero

    # ------------------------------------------------------------------
    # Vectorised helpers used by sparse kernels
    # ------------------------------------------------------------------
    def zeros(self, n: int) -> np.ndarray:
        """An array of ``n`` additive neutral elements."""
        return np.full(n, self.zero, dtype=self.dtype)

    def ones(self, n: int) -> np.ndarray:
        """An array of ``n`` multiplicative neutral elements."""
        return np.full(n, self.one, dtype=self.dtype)

    def coerce(self, values) -> np.ndarray:
        """Coerce ``values`` to this semiring's dtype (contiguous 1-D)."""
        return np.ascontiguousarray(np.asarray(values, dtype=self.dtype))

    def add_reduce(self, values: np.ndarray) -> float:
        """Reduce a 1-D array with the additive monoid (``0`` if empty)."""
        values = self.coerce(values)
        if values.size == 0:
            return self.dtype.type(self.zero)
        return self.add.reduce(values)

    def add_reduceat(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Segmented additive reduction (wrapper around ``ufunc.reduceat``).

        ``starts`` are the segment start offsets into ``values`` (as produced
        by e.g. ``np.flatnonzero`` on a boundary mask); segments must be
        non-empty, matching the semantics of ``np.ufunc.reduceat``.
        """
        values = self.coerce(values)
        if values.size == 0:
            return values
        return self.add.reduceat(values, starts.astype(np.intp, copy=False))

    def sum_duplicates(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Combine duplicate keys with semiring addition.

        Parameters
        ----------
        keys:
            1-D integer array of (possibly duplicated) keys.
        values:
            1-D value array aligned with ``keys``.

        Returns
        -------
        (unique_keys, combined_values):
            ``unique_keys`` sorted ascending, ``combined_values[i]`` is the
            ⊕-reduction of all values whose key equals ``unique_keys[i]``.
        """
        keys = np.asarray(keys)
        values = self.coerce(values)
        if keys.size == 0:
            return keys.astype(np.int64), values
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        vals_sorted = values[order]
        boundary = np.empty(keys_sorted.size, dtype=bool)
        boundary[0] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        combined = self.add_reduceat(vals_sorted, starts)
        return keys_sorted[starts].astype(np.int64), combined

    # ------------------------------------------------------------------
    # Dense reference kernels (used only by tests / small problems)
    # ------------------------------------------------------------------
    def dense_matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Dense reference ``A ⊗ B`` with ⊕-accumulation.

        Cubic-time reference used by the test-suite to validate every sparse
        kernel; it is intentionally simple rather than fast.
        """
        A = np.asarray(A, dtype=self.dtype)
        B = np.asarray(B, dtype=self.dtype)
        n, k = A.shape
        k2, m = B.shape
        if k != k2:
            raise ValueError(f"shape mismatch for matmul: {A.shape} x {B.shape}")
        out = np.full((n, m), self.zero, dtype=self.dtype)
        for kk in range(k):
            # outer "product" of column kk of A with row kk of B
            contrib = self.mul(A[:, kk : kk + 1], B[kk : kk + 1, :])
            out = self.add(out, contrib)
        return out

    def dense_add(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Dense element-wise ``A ⊕ B``."""
        return self.add(
            np.asarray(A, dtype=self.dtype), np.asarray(B, dtype=self.dtype)
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Semiring({self.name!r})"
