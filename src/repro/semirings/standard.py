"""The concrete semirings used by the paper and its applications.

* ``PLUS_TIMES`` — ordinary arithmetic ``(+, ·, 0, 1)``; a ring, so every
  update is an *algebraic* update (Section V).  Used in the paper's
  Figure 9 experiment and by triangle counting.
* ``MIN_PLUS`` — the tropical semiring ``(min, +, +inf, 0)`` used for
  shortest paths; *not* a ring (``min`` cannot undo), used in the paper's
  Figure 10 general-update experiment.
* ``MAX_PLUS`` — dual tropical semiring (critical paths / longest paths).
* ``BOOLEAN`` — ``(∨, ∧, False, True)`` over 0/1 floats; reachability and
  structural products.
* ``MAX_MIN`` — bottleneck / widest-path semiring.
* ``MAX_TIMES`` — most-reliable-path semiring over probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.semirings.base import Semiring

__all__ = [
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_PLUS",
    "BOOLEAN",
    "MAX_MIN",
    "MAX_TIMES",
    "REGISTRY",
    "get_semiring",
    "list_semirings",
]


def _negate(values: np.ndarray) -> np.ndarray:
    return -values


PLUS_TIMES = Semiring(
    name="plus_times",
    add=np.add,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    dtype=np.dtype(np.float64),
    is_ring=True,
    negate=_negate,
    is_idempotent=False,
)

MIN_PLUS = Semiring(
    name="min_plus",
    add=np.minimum,
    mul=np.add,
    zero=np.inf,
    one=0.0,
    dtype=np.dtype(np.float64),
    is_ring=False,
    negate=None,
    is_idempotent=True,
)

MAX_PLUS = Semiring(
    name="max_plus",
    add=np.maximum,
    mul=np.add,
    zero=-np.inf,
    one=0.0,
    dtype=np.dtype(np.float64),
    is_ring=False,
    negate=None,
    is_idempotent=True,
)

# Boolean semiring encoded over float64 {0.0, 1.0}: logical_or / logical_and
# via maximum / minimum keeps reduceat available and avoids dtype juggling.
BOOLEAN = Semiring(
    name="boolean",
    add=np.maximum,
    mul=np.minimum,
    zero=0.0,
    one=1.0,
    dtype=np.dtype(np.float64),
    is_ring=False,
    negate=None,
    is_idempotent=True,
)

MAX_MIN = Semiring(
    name="max_min",
    add=np.maximum,
    mul=np.minimum,
    zero=-np.inf,
    one=np.inf,
    dtype=np.dtype(np.float64),
    is_ring=False,
    negate=None,
    is_idempotent=True,
)

MAX_TIMES = Semiring(
    name="max_times",
    add=np.maximum,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    dtype=np.dtype(np.float64),
    is_ring=False,
    negate=None,
    is_idempotent=True,
)


REGISTRY: dict[str, Semiring] = {
    sr.name: sr
    for sr in (PLUS_TIMES, MIN_PLUS, MAX_PLUS, BOOLEAN, MAX_MIN, MAX_TIMES)
}


def get_semiring(name: str) -> Semiring:
    """Look up a registered semiring by name.

    Raises
    ------
    KeyError
        If no semiring with that name is registered.
    """
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown semiring {name!r}; known semirings: {known}") from None


def list_semirings() -> list[str]:
    """Names of all registered semirings (sorted)."""
    return sorted(REGISTRY)
