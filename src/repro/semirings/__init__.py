"""Semiring algebra substrate.

The paper computes SpGEMM over arbitrary semirings (Section III).  This
package provides a small, vectorised semiring abstraction used by every
sparse kernel in the repository:

* :class:`~repro.semirings.base.Semiring` — the protocol (additive monoid,
  multiplicative monoid, neutral elements, vectorised ufuncs, segment
  reduction).
* :mod:`repro.semirings.standard` — the concrete semirings referenced by the
  paper: ``(+, ·)``, ``(min, +)``, ``(max, +)``, ``(∨, ∧)``, ``(max, min)``
  and ``(max, ·)``.

Every semiring exposes NumPy ufuncs for ``add`` and ``mul`` so that local
SpGEMM kernels can accumulate duplicate entries with ``ufunc.reduceat`` and
perform element-wise combination without Python-level loops.
"""

from repro.semirings.base import Semiring, SemiringError
from repro.semirings.standard import (
    BOOLEAN,
    MAX_MIN,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    PLUS_TIMES,
    REGISTRY,
    get_semiring,
    list_semirings,
)

__all__ = [
    "Semiring",
    "SemiringError",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_MIN",
    "MAX_TIMES",
    "BOOLEAN",
    "REGISTRY",
    "get_semiring",
    "list_semirings",
]
