"""NetworkX interoperability helpers.

Used by the application examples (shortest paths, triangle counting) to
validate algebraic results against NetworkX reference algorithms and to let
users feed their own NetworkX graphs into the distributed data structures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edges_to_networkx", "networkx_to_edges"]


def edges_to_networkx(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray | None = None,
    *,
    directed: bool = True,
):
    """Build a NetworkX graph from an edge/triplet list.

    ``values`` (if given) become the ``weight`` attribute of each edge.
    Vertices ``0 .. n-1`` are always present, even if isolated.
    """
    import networkx as nx

    graph = nx.DiGraph() if directed else nx.Graph()
    graph.add_nodes_from(range(int(n)))
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if values is None:
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    else:
        values = np.asarray(values, dtype=np.float64)
        graph.add_weighted_edges_from(
            zip(rows.tolist(), cols.tolist(), values.tolist())
        )
    return graph


def networkx_to_edges(graph) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Extract ``(n, rows, cols, weights)`` from a NetworkX graph.

    Nodes must be integers in ``[0, n)`` (relabel beforehand otherwise);
    missing ``weight`` attributes default to 1.0.  Undirected graphs
    contribute both edge directions, matching how the paper builds
    adjacency matrices.
    """
    import networkx as nx

    nodes = list(graph.nodes())
    if not all(isinstance(v, (int, np.integer)) for v in nodes):
        raise ValueError(
            "graph nodes must be integers; use networkx.convert_node_labels_to_integers first"
        )
    n = (max(nodes) + 1) if nodes else 0
    rows, cols, vals = [], [], []
    for u, v, data in graph.edges(data=True):
        w = float(data.get("weight", 1.0))
        rows.append(int(u))
        cols.append(int(v))
        vals.append(w)
        if not graph.is_directed():
            rows.append(int(v))
            cols.append(int(u))
            vals.append(w)
    return (
        n,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )
