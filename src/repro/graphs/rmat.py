"""R-MAT (recursive matrix) graph generator.

The paper's synthetic scaling experiments (Fig. 8) use R-MAT graphs "with
the same R-MAT parameters as the Graph500 benchmark", i.e.
``(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)``.  This module provides a fully
vectorised generator: for each of the ``scale`` recursion levels one
quadrant decision is drawn for *all* edges at once, so generating millions
of edges takes milliseconds rather than minutes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GRAPH500_PARAMS", "rmat_edges"]

#: The Graph500 R-MAT probabilities (a, b, c, d).
GRAPH500_PARAMS: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    *,
    params: tuple[float, float, float, float] = GRAPH500_PARAMS,
    seed: int | None = 0,
    noise: float = 0.1,
    deduplicate: bool = False,
    remove_self_loops: bool = False,
) -> tuple[int, np.ndarray, np.ndarray]:
    """Generate an R-MAT edge list.

    Parameters
    ----------
    scale:
        ``n = 2**scale`` vertices.
    edge_factor:
        Number of generated edges per vertex (Graph500 uses 16).
    params:
        Quadrant probabilities ``(a, b, c, d)``; must sum to 1.
    seed:
        RNG seed.
    noise:
        Per-level multiplicative jitter of the probabilities (as in the
        Graph500 reference implementation) to avoid exactly self-similar
        structure; ``0`` disables it.
    deduplicate:
        Remove duplicate edges (the raw model produces multi-edges).
    remove_self_loops:
        Drop ``u == v`` edges.

    Returns
    -------
    (n, src, dst):
        Vertex count and the endpoint arrays.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    if edge_factor < 0:
        raise ValueError("edge_factor must be non-negative")
    a, b, c, d = params
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError(f"R-MAT probabilities must sum to 1 (got {total})")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        if noise > 0.0:
            jitter = rng.uniform(1.0 - noise, 1.0 + noise, size=4)
            pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
            norm = pa + pb + pc + pd
            pa, pb, pc, pd = pa / norm, pb / norm, pc / norm, pd / norm
        else:
            pa, pb, pc, pd = a, b, c, d
        r = rng.random(m)
        # quadrant: 0 = (0,0), 1 = (0,1), 2 = (1,0), 3 = (1,1)
        go_right = (r >= pa) & (r < pa + pb) | (r >= pa + pb + pc)
        go_down = r >= pa + pb
        bit = np.int64(1) << np.int64(scale - 1 - level)
        src += go_down.astype(np.int64) * bit
        dst += go_right.astype(np.int64) * bit
    if remove_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if deduplicate:
        keys = src * np.int64(n) + dst
        _, unique_idx = np.unique(keys, return_index=True)
        unique_idx.sort()
        src, dst = src[unique_idx], dst[unique_idx]
    return n, src, dst
