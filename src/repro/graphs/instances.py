"""The Table-I instance catalogue and its scaled-down surrogates.

The paper's real-world inputs cannot be downloaded in this offline
environment and would not fit a pure-Python substrate, so every instance is
replaced by a *surrogate*: an R-MAT graph whose

* vertex count and edge count are the paper's values divided by a
  configurable ``scale_divisor`` (so the n : nnz ratio — average degree —
  is preserved),
* skew parameters are chosen per category (social networks are the most
  skewed, web crawls moderately, peer-to-peer the least),
* edges are read as undirected (both ``(u, v)`` and ``(v, u)`` are added),
  exactly as the paper constructs its adjacency matrices.

Surrogates keep the properties that drive the paper's results — degree
skew, density, relative instance ordering and the hypersparsity of update
matrices relative to the adjacency matrix — while staying small enough to
simulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.rmat import rmat_edges

__all__ = [
    "GraphInstance",
    "TABLE1_INSTANCES",
    "get_instance",
    "list_instances",
    "generate_instance",
]

#: Default divisor applied to the paper's instance sizes.
DEFAULT_SCALE_DIVISOR = 16384

#: R-MAT skew parameters per instance category.
CATEGORY_PARAMS: dict[str, tuple[float, float, float, float]] = {
    "social": (0.57, 0.19, 0.19, 0.05),
    "web": (0.50, 0.22, 0.22, 0.06),
    "peer-to-peer": (0.45, 0.22, 0.22, 0.11),
}


@dataclass(frozen=True)
class GraphInstance:
    """One row of the paper's Table I."""

    #: instance name as used in the paper
    name: str
    #: data source in the paper (SNAP or Network Repository)
    source: str
    #: category / type column of Table I
    category: str
    #: number of vertices in the original instance
    n_full: int
    #: number of non-zeros (directed edge entries) in the original instance
    nnz_full: int

    @property
    def avg_degree(self) -> float:
        return self.nnz_full / self.n_full

    def surrogate_size(self, scale_divisor: int = DEFAULT_SCALE_DIVISOR) -> tuple[int, int]:
        """(n, target undirected edge count) of the scaled surrogate."""
        n = max(64, int(self.n_full // scale_divisor))
        # nnz in Table I counts matrix non-zeros (both directions); the
        # generator produces undirected edges, each contributing two
        # non-zeros, hence the division by 2.
        edges = max(4 * n, int(self.nnz_full // scale_divisor) // 2)
        return n, edges


TABLE1_INSTANCES: dict[str, GraphInstance] = {
    inst.name: inst
    for inst in (
        GraphInstance("LiveJournal", "SNAP", "social", 4_000_000, 86_000_000),
        GraphInstance("orkut", "SNAP", "social", 3_000_000, 234_000_000),
        GraphInstance("tech-p2p", "Network Repository", "peer-to-peer", 5_000_000, 295_000_000),
        GraphInstance("indochina", "Network Repository", "web", 7_000_000, 304_000_000),
        GraphInstance("sinaweibo", "Network Repository", "social", 58_000_000, 522_000_000),
        GraphInstance("uk2002", "Network Repository", "web", 18_000_000, 529_000_000),
        GraphInstance("wikipedia", "Network Repository", "web", 27_000_000, 1_088_000_000),
        GraphInstance("PayDomain", "Network Repository", "web", 42_000_000, 1_165_000_000),
        GraphInstance("uk2005", "Network Repository", "web", 39_000_000, 1_581_000_000),
        GraphInstance("webbase", "Network Repository", "web", 118_000_000, 1_736_000_000),
        GraphInstance("twitter", "Network Repository", "social", 41_000_000, 2_405_000_000),
        GraphInstance("friendster", "SNAP", "social", 124_000_000, 3_612_000_000),
    )
}


def list_instances() -> list[str]:
    """Instance names in the order of the paper's Table I."""
    return list(TABLE1_INSTANCES)


def get_instance(name: str) -> GraphInstance:
    try:
        return TABLE1_INSTANCES[name]
    except KeyError:
        known = ", ".join(TABLE1_INSTANCES)
        raise KeyError(f"unknown instance {name!r}; known instances: {known}") from None


def generate_instance(
    name: str,
    *,
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    seed: int | None = None,
    symmetrize: bool = True,
    weights: str = "uniform",
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Generate the scaled surrogate of a Table-I instance.

    Returns ``(n, rows, cols, values)`` of the adjacency matrix; with
    ``symmetrize=True`` (the paper reads all graphs as undirected) both
    ``(u, v)`` and ``(v, u)`` are present and de-duplicated.

    ``weights`` selects the value distribution: ``"uniform"`` draws from
    ``(0, 1]`` (suitable for ``(min, +)``), ``"ones"`` sets every value to 1.
    """
    inst = get_instance(name)
    n_target, edge_target = inst.surrogate_size(scale_divisor)
    if seed is None:
        seed = abs(hash(name)) % (2**31)
    params = CATEGORY_PARAMS.get(inst.category, CATEGORY_PARAMS["web"])
    # choose an R-MAT scale that covers n_target, then fold indices into
    # [0, n_target) to keep the requested vertex count exact.
    scale = max(1, int(np.ceil(np.log2(n_target))))
    edge_factor = max(1, int(np.ceil(edge_target / (1 << scale))))
    _n_pow2, src, dst = rmat_edges(
        scale,
        edge_factor,
        params=params,
        seed=seed,
        remove_self_loops=False,
    )
    src = src % n_target
    dst = dst % n_target
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if src.size > edge_target:
        src, dst = src[:edge_target], dst[:edge_target]
    if symmetrize:
        rows = np.concatenate([src, dst])
        cols = np.concatenate([dst, src])
    else:
        rows, cols = src, dst
    keys = rows * np.int64(n_target) + cols
    _, idx = np.unique(keys, return_index=True)
    idx.sort()
    rows, cols = rows[idx], cols[idx]
    rng = np.random.default_rng(seed + 1)
    if weights == "uniform":
        values = rng.random(rows.size) * 0.999 + 0.001
    elif weights == "ones":
        values = np.ones(rows.size, dtype=np.float64)
    else:
        raise ValueError(f"unknown weight distribution {weights!r}")
    return n_target, rows, cols, values
