"""Simple synthetic graph generators used by tests and examples."""

from __future__ import annotations

import numpy as np

__all__ = ["erdos_renyi_edges", "ring_of_cliques_edges"]


def erdos_renyi_edges(
    n: int,
    m: int,
    *,
    seed: int | None = 0,
    allow_self_loops: bool = False,
    deduplicate: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """``m`` uniformly random directed edges on ``n`` vertices (G(n, m))."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if m < 0:
        raise ValueError("m must be >= 0")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    if not allow_self_loops:
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % n
    if deduplicate and m:
        keys = src * np.int64(n) + dst
        _, idx = np.unique(keys, return_index=True)
        idx.sort()
        src, dst = src[idx], dst[idx]
    return src, dst


def ring_of_cliques_edges(
    n_cliques: int, clique_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """A ring of fully connected cliques (deterministic test topology).

    Every clique is a complete directed graph (without self loops); one
    bridge edge connects consecutive cliques in a ring.  Useful for tests
    that need predictable triangle counts and shortest-path structure.
    """
    if n_cliques < 1 or clique_size < 1:
        raise ValueError("n_cliques and clique_size must be >= 1")
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    for c in range(n_cliques):
        base = c * clique_size
        members = np.arange(base, base + clique_size, dtype=np.int64)
        s, d = np.meshgrid(members, members, indexing="ij")
        mask = s != d
        srcs.append(s[mask].ravel())
        dsts.append(d[mask].ravel())
        # bridge to the next clique (both directions)
        nxt = ((c + 1) % n_cliques) * clique_size
        srcs.append(np.array([base, nxt], dtype=np.int64))
        dsts.append(np.array([nxt, base], dtype=np.int64))
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    keys = src * np.int64(n_cliques * clique_size) + dst
    _, idx = np.unique(keys, return_index=True)
    idx.sort()
    return src[idx], dst[idx]
