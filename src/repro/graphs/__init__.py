"""Graph substrate: generators, instance catalogue and workloads.

The paper evaluates on 12 large real-world graphs (Table I, 86 M – 3.6 B
edges, downloaded from SNAP / Network Repository) plus synthetic R-MAT
graphs with Graph500 parameters.  Neither the originals nor a cluster to
hold them is available here, so this package provides:

* :mod:`repro.graphs.rmat` — a vectorised R-MAT generator (Graph500
  parameters by default), used both for the paper's synthetic experiments
  and to synthesise surrogates of the real-world instances.
* :mod:`repro.graphs.random_graphs` — Erdős–Rényi and simple structured
  generators used by tests and examples.
* :mod:`repro.graphs.instances` — the Table-I catalogue: for every paper
  instance a scaled-down synthetic surrogate with the same category
  (social / web / peer-to-peer), the same n : nnz ratio and a skew chosen
  per category.
* :mod:`repro.graphs.nx_interop` — conversion to/from NetworkX for the
  application examples.
"""

from repro.graphs.rmat import GRAPH500_PARAMS, rmat_edges
from repro.graphs.random_graphs import erdos_renyi_edges, ring_of_cliques_edges
from repro.graphs.instances import (
    GraphInstance,
    TABLE1_INSTANCES,
    generate_instance,
    get_instance,
    list_instances,
)
from repro.graphs.nx_interop import edges_to_networkx, networkx_to_edges

__all__ = [
    "GRAPH500_PARAMS",
    "rmat_edges",
    "erdos_renyi_edges",
    "ring_of_cliques_edges",
    "GraphInstance",
    "TABLE1_INSTANCES",
    "generate_instance",
    "get_instance",
    "list_instances",
    "edges_to_networkx",
    "networkx_to_edges",
]
