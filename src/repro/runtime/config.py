"""Machine model for the simulated cluster.

The paper's testbed: 16 nodes, 2× Intel Xeon 6126 (12 cores each), 192 GB
RAM, 100 GBit Omni-Path.  CombBLAS/CTF/our-code run 4 MPI ranks per node
with 6 OpenMP threads each; PETSc runs 1 rank per node with 24 threads.

:class:`MachineModel` captures the parameters the simulator needs to turn
*communicated bytes* and *measured local compute* into a modelled parallel
time:

* ``alpha`` — per-message latency (seconds).
* ``beta`` — per-byte transfer time (seconds/byte), i.e. 1/bandwidth.
* ``intra_node_alpha`` / ``intra_node_beta`` — cheaper costs for messages
  that stay within a node (the simulator uses them when both endpoints map
  to the same node).
* ``threads_per_rank`` and ``omp_efficiency`` — the modelled shared-memory
  speedup applied to measured local compute time: local kernels written in
  NumPy run on one core here, whereas the paper's kernels use 6 OpenMP
  threads, so measured time is divided by
  ``threads_per_rank * omp_efficiency``.
* ``compute_scale`` — a uniform scale factor applied to local compute; it
  does not change any *relative* result and defaults to 1.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.sparse.kernels.tier import KERNEL_TIER_ENV_VAR, resolve_kernel_tier

__all__ = [
    "KERNEL_TIER_ENV_VAR",
    "MachineModel",
    "NODE_CONFIGS",
    "OVERLAP_ENV_VAR",
    "overlap_enabled",
    "ranks_for_nodes",
    "resolve_kernel_tier",
]

#: Environment variable selecting the communication schedule: ``on``
#: (default) uses the overlapped pipelines (double-buffered SUMMA,
#: pipelined C* broadcasts, overlapped redistribution); ``off`` keeps the
#: synchronous schedule, which serves as the differential oracle.
OVERLAP_ENV_VAR = "REPRO_OVERLAP"

# ``KERNEL_TIER_ENV_VAR`` (``REPRO_KERNEL_TIER``) and
# ``resolve_kernel_tier`` are re-exported from
# :mod:`repro.sparse.kernels.tier` so runtime configuration has one
# import home for the environment switches; see that module for the
# ``python`` / ``compiled`` / ``auto`` semantics.


def overlap_enabled() -> bool:
    """Whether the compute/comm-overlap pipelines are enabled.

    Resolved from the ``REPRO_OVERLAP`` environment variable: ``on`` /
    ``1`` / ``true`` / unset enable overlap, ``off`` / ``0`` / ``false``
    select the synchronous oracle schedule.  Any other value raises so a
    typo cannot silently flip the schedule under a benchmark run.
    """
    raw = os.environ.get(OVERLAP_ENV_VAR, "on").strip().lower()
    if raw in ("on", "1", "true", "yes", ""):
        return True
    if raw in ("off", "0", "false", "no"):
        return False
    raise ValueError(
        f"{OVERLAP_ENV_VAR}={raw!r} is not a recognised setting; "
        "use 'on' or 'off'"
    )


@dataclass(frozen=True)
class MachineModel:
    """Cost-model parameters for the simulated cluster."""

    #: per-message latency for inter-node messages (seconds)
    alpha: float = 2.0e-6
    #: per-byte cost for inter-node messages (seconds/byte); 100 Gbit/s link
    beta: float = 8.0e-11
    #: per-message latency for intra-node messages (seconds)
    intra_node_alpha: float = 5.0e-7
    #: per-byte cost for intra-node messages (seconds/byte)
    intra_node_beta: float = 2.0e-11
    #: MPI ranks per physical node
    ranks_per_node: int = 4
    #: OpenMP threads per MPI rank
    threads_per_rank: int = 6
    #: parallel efficiency of the modelled OpenMP parallelism in [0, 1]
    omp_efficiency: float = 0.75
    #: uniform scaling of measured local compute time
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("latency/bandwidth parameters must be non-negative")
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if self.threads_per_rank < 1:
            raise ValueError("threads_per_rank must be >= 1")
        if not (0.0 < self.omp_efficiency <= 1.0):
            raise ValueError("omp_efficiency must be in (0, 1]")
        if self.compute_scale <= 0:
            raise ValueError("compute_scale must be positive")

    # ------------------------------------------------------------------
    @property
    def local_speedup(self) -> float:
        """Modelled shared-memory speedup applied to measured local time."""
        return max(1.0, self.threads_per_rank * self.omp_efficiency)

    def compute_time(self, measured_seconds: float) -> float:
        """Convert measured single-core local time to modelled rank time."""
        return measured_seconds * self.compute_scale / self.local_speedup

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` under a block rank-to-node mapping."""
        return rank // self.ranks_per_node

    def message_cost(self, src: int, dst: int, nbytes: int) -> float:
        """Hockney cost of a single point-to-point message."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if src == dst:
            return 0.0
        if self.node_of(src) == self.node_of(dst):
            return self.intra_node_alpha + self.intra_node_beta * nbytes
        return self.alpha + self.beta * nbytes

    def with_ranks_per_node(self, ranks_per_node: int) -> "MachineModel":
        """A copy of this model with a different ranks-per-node mapping."""
        return replace(self, ranks_per_node=ranks_per_node)

    def with_threads(self, threads_per_rank: int) -> "MachineModel":
        """A copy of this model with a different thread count per rank."""
        return replace(self, threads_per_rank=threads_per_rank)


#: The node configurations used in the paper's scaling experiments
#: (Figures 6–8 and 11–12): "nodes x ranks-per-node" → total MPI ranks.
NODE_CONFIGS: dict[str, int] = {
    "1x4": 4,
    "4x4": 16,
    "16x4": 64,
}


def ranks_for_nodes(nodes: int, ranks_per_node: int = 4) -> int:
    """Total MPI ranks for a node count, mirroring the paper's setup.

    The paper requires a square process grid, hence node counts of 1, 4 and
    16 with 4 ranks per node (p = 4, 16, 64).
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    return nodes * ranks_per_node
