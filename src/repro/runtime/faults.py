"""Deterministic fault injection for SimMPI and loopback worlds.

A :class:`FaultPlan` describes *what goes wrong and when* — process kills at
chosen scenario step indices, probabilistic message drops, probabilistic
message delays — parsed from the ``REPRO_FAULTS`` environment variable (or
built programmatically).  A :class:`FaultInjector` executes one plan
deterministically: the same spec and seed always kill the same step and
charge the same recovery traffic, so a fault drill is as replayable as the
trace it interrupts.

``REPRO_FAULTS`` grammar (``;``-separated clauses, order-free)::

    kill@<step>              kill the world when step <step> is reached
    kill@<step>:proc=<p>     kill only loopback process <p> at step <step>
    drop=1/<N>               drop (and retransmit) ~1 in N messages
    delay=1/<N>:<seconds>    delay ~1 in N messages by <seconds> (modeled)
    seed=<s>                 RNG seed for the drop/delay draws (default 0)

Example: ``REPRO_FAULTS="kill@3;drop=1/50;seed=7"``.

Faults never corrupt results: a dropped message is charged once in its
nominal category (the payload is assumed retransmitted) and once more in
:data:`repro.runtime.stats.StatCategory.RECOVERY` for the retransmission,
so all non-recovery categories stay byte-identical to a fault-free run.
Delays add modelled seconds only.  Kills raise :class:`SimulatedCrash`,
which :func:`repro.scenarios.replay.replay` converts into a
retry-or-restore recovery depending on its ``on_crash`` policy.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.stats import set_fault_hook

__all__ = [
    "FAULTS_ENV_VAR",
    "SimulatedCrash",
    "FaultPlanError",
    "FaultPlan",
    "FaultInjector",
    "faults_from_env",
]

#: Environment variable holding the fault specification.
FAULTS_ENV_VAR = "REPRO_FAULTS"


class SimulatedCrash(RuntimeError):
    """Raised at a kill point; carries the step index and victim process."""

    def __init__(self, step_index: int, process: int | None = None) -> None:
        where = f"step {step_index}"
        if process is not None:
            where += f" on process {process}"
        super().__init__(f"injected crash at {where}")
        self.step_index = int(step_index)
        self.process = None if process is None else int(process)


class FaultPlanError(ValueError):
    """A ``REPRO_FAULTS`` specification could not be parsed."""


@dataclass(frozen=True)
class FaultPlan:
    """Immutable description of the faults to inject into one run."""

    #: ``(step_index, process-or-None)`` kill points; ``None`` kills the
    #: whole world regardless of which process reaches the step first.
    kills: tuple[tuple[int, int | None], ...] = ()
    #: drop one message in ``drop_one_in`` (0 disables dropping)
    drop_one_in: int = 0
    #: delay one message in ``delay_one_in`` (0 disables delays)
    delay_one_in: int = 0
    #: modelled seconds added to each delayed message
    delay_seconds: float = 0.0
    #: seed for the drop/delay pseudo-random draws
    seed: int = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar into a plan."""
        kills: list[tuple[int, int | None]] = []
        drop_one_in = 0
        delay_one_in = 0
        delay_seconds = 0.0
        seed = 0
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            try:
                if clause.startswith("kill@"):
                    body = clause[len("kill@") :]
                    process: int | None = None
                    if ":" in body:
                        body, opt = body.split(":", 1)
                        if not opt.startswith("proc="):
                            raise FaultPlanError(
                                f"unknown kill option {opt!r} (want proc=<p>)"
                            )
                        process = int(opt[len("proc=") :])
                    kills.append((int(body), process))
                elif clause.startswith("drop="):
                    drop_one_in = _parse_one_in(clause[len("drop=") :])
                elif clause.startswith("delay="):
                    body = clause[len("delay=") :]
                    if ":" not in body:
                        raise FaultPlanError(
                            "delay clause must be delay=1/<N>:<seconds>"
                        )
                    ratio, seconds = body.split(":", 1)
                    delay_one_in = _parse_one_in(ratio)
                    delay_seconds = float(seconds)
                elif clause.startswith("seed="):
                    seed = int(clause[len("seed=") :])
                else:
                    raise FaultPlanError(f"unknown fault clause {clause!r}")
            except FaultPlanError:
                raise
            except ValueError as exc:
                raise FaultPlanError(
                    f"malformed fault clause {clause!r}: {exc}"
                ) from exc
        return cls(
            kills=tuple(kills),
            drop_one_in=drop_one_in,
            delay_one_in=delay_one_in,
            delay_seconds=delay_seconds,
            seed=seed,
        )

    def describe(self) -> str:
        """Round-trippable textual form of the plan."""
        clauses = []
        for step, process in self.kills:
            clauses.append(
                f"kill@{step}" if process is None else f"kill@{step}:proc={process}"
            )
        if self.drop_one_in:
            clauses.append(f"drop=1/{self.drop_one_in}")
        if self.delay_one_in:
            clauses.append(f"delay=1/{self.delay_one_in}:{self.delay_seconds}")
        clauses.append(f"seed={self.seed}")
        return ";".join(clauses)


def _parse_one_in(text: str) -> int:
    if not text.startswith("1/"):
        raise FaultPlanError(f"expected a 1/<N> ratio, got {text!r}")
    value = int(text[2:])
    if value <= 0:
        raise FaultPlanError(f"1/<N> ratio needs N >= 1, got {value}")
    return value


class FaultInjector:
    """Executes one :class:`FaultPlan` deterministically.

    The injector has two duties:

    * :meth:`check_step` — consulted by the replay loop at every step
      boundary; raises :class:`SimulatedCrash` the *first* time an armed
      kill point is reached (recovery replays the same step without the
      crash refiring, because fired kills are remembered).
    * the message hook — installed into
      :func:`repro.runtime.stats.set_fault_hook` while :meth:`activate` is
      in effect; draws drop/delay decisions from a dedicated, seeded
      counter-based stream (one draw per recorded message batch) and
      returns the retransmission/delay charge for the ``recovery``
      category.

    Drop/delay draws hash a per-injector counter with the plan seed, so
    determinism survives thread interleaving in loopback worlds: the k-th
    recorded observation of each process sees the same draw on every run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fired_kills: set[tuple] = set()
        self._lock = threading.Lock()
        self._counters: dict[int, int] = {}
        self._active = threading.local()

    # ------------------------------------------------------------------
    def check_step(self, step_index: int, process: int | None = None) -> None:
        """Raise :class:`SimulatedCrash` when an unfired kill point matches."""
        for kill_step, kill_process in self.plan.kills:
            if kill_step != step_index:
                continue
            if kill_process is not None and process is not None:
                if kill_process != process:
                    continue
            self._fire_once(("kill", kill_step, kill_process), step_index, kill_process)

    def fire_crash(
        self, step_index: int, victim: int | None, process: int | None = None
    ) -> None:
        """Fire an explicit :class:`~repro.scenarios.model.CrashStep` once.

        ``victim`` restricts the kill to one process; non-victim callers
        pass through unharmed.  Like plan kills, a fired crash point is
        remembered so the recovered run replays the step as a no-op.
        """
        if victim is not None and process is not None and victim != process:
            return
        self._fire_once(("crash", step_index, victim), step_index, victim)

    def _fire_once(
        self, key: tuple, step_index: int, victim: int | None
    ) -> None:
        with self._lock:
            if key in self._fired_kills:
                return
            self._fired_kills.add(key)
        raise SimulatedCrash(step_index, victim)

    def reset_kills(self) -> None:
        """Forget fired kill points (so a fresh run re-arms the plan)."""
        with self._lock:
            self._fired_kills.clear()
            self._counters.clear()

    # ------------------------------------------------------------------
    def activate(self, process: int = 0) -> "_InjectorActivation":
        """Context manager arming the message hook for the calling thread."""
        return _InjectorActivation(self, int(process))

    def _draw(self, process: int) -> float:
        with self._lock:
            count = self._counters.get(process, 0)
            self._counters[process] = count + 1
        # A tiny counter-based PRNG: one independent uniform per
        # (seed, process, count) triple, stable under thread scheduling.
        seq = np.random.SeedSequence(
            entropy=self.plan.seed, spawn_key=(process, count)
        )
        return float(np.random.default_rng(seq).random())

    def on_message(
        self, process: int, category: str, messages: int, nbytes: int
    ) -> tuple[int, int, float] | None:
        """Drop/delay decision for one recorded observation."""
        plan = self.plan
        if not plan.drop_one_in and not plan.delay_one_in:
            return None
        draw = self._draw(process)
        if plan.drop_one_in and draw < 1.0 / plan.drop_one_in:
            # the whole batch is retransmitted once
            return (int(messages), int(nbytes), 0.0)
        if plan.delay_one_in and draw < 1.0 / plan.delay_one_in:
            return (0, 0, float(plan.delay_seconds))
        return None


@dataclass
class _InjectorActivation:
    """Arms the global stats fault hook for one ``with`` block."""

    injector: FaultInjector
    process: int
    _previous_active: bool = field(default=False, repr=False)

    def __enter__(self) -> FaultInjector:
        local = self.injector._active
        self._previous_active = getattr(local, "armed", False)
        local.armed = True
        local.process = self.process
        _install_shared_hook(self.injector)
        return self.injector

    def __exit__(self, *exc_info: object) -> None:
        self.injector._active.armed = self._previous_active
        _release_shared_hook(self.injector)


# One process-wide hook dispatches to whichever injector armed the calling
# thread; a refcount tracks nested/concurrent activations so the hook is
# uninstalled only when the last activation exits.
_HOOK_LOCK = threading.Lock()
_HOOK_USERS: dict[int, int] = {}
_HOOK_INJECTORS: dict[int, FaultInjector] = {}


def _shared_hook(
    category: str, messages: int, nbytes: int
) -> tuple[int, int, float] | None:
    for injector in list(_HOOK_INJECTORS.values()):
        local = injector._active
        if getattr(local, "armed", False):
            return injector.on_message(
                getattr(local, "process", 0), category, messages, nbytes
            )
    return None


def _install_shared_hook(injector: FaultInjector) -> None:
    with _HOOK_LOCK:
        key = id(injector)
        _HOOK_USERS[key] = _HOOK_USERS.get(key, 0) + 1
        _HOOK_INJECTORS[key] = injector
        set_fault_hook(_shared_hook)


def _release_shared_hook(injector: FaultInjector) -> None:
    with _HOOK_LOCK:
        key = id(injector)
        count = _HOOK_USERS.get(key, 0) - 1
        if count <= 0:
            _HOOK_USERS.pop(key, None)
            _HOOK_INJECTORS.pop(key, None)
        else:
            _HOOK_USERS[key] = count
        if not _HOOK_INJECTORS:
            set_fault_hook(None)


def faults_from_env(env: "os._Environ[str] | dict[str, str] | None" = None) -> FaultPlan | None:
    """The :class:`FaultPlan` selected by ``REPRO_FAULTS`` (or ``None``)."""
    source = os.environ if env is None else env
    spec = source.get(FAULTS_ENV_VAR, "").strip()
    if not spec:
        return None
    return FaultPlan.parse(spec)
