"""Square process grid (2D matrix distribution).

CombBLAS, CTF and the paper's framework all require a square ``√p × √p``
process grid so that a 2D block distribution of the matrix maps one block
per MPI rank.  :class:`ProcessGrid` provides the rank ↔ (row, column)
mapping and the row/column sub-groups used by the broadcast, aggregation
and redistribution steps of the algorithms.

Grid coordinates are 0-based here (the paper uses 1-based indices in its
pseudocode); ``rank = row * √p + col`` (row-major).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

__all__ = ["ProcessGrid"]


@dataclass(frozen=True)
class ProcessGrid:
    """A square ``q × q`` grid of ``p = q²`` simulated MPI ranks."""

    n_ranks: int

    @classmethod
    def fit(cls, n_ranks: int) -> "ProcessGrid":
        """The largest square grid fitting into ``n_ranks`` ranks.

        ``ProcessGrid(p)`` is strict: a non-square ``p`` raises.  ``fit``
        instead degrades gracefully — ``fit(6)`` builds the 2×2 grid, the
        two surplus ranks stay idle (they own no block and participate in
        no grid collective), and a warning records the waste.  This is what
        keeps ``mpiexec -n 6`` runs working instead of aborting deep inside
        grid construction.
        """
        if n_ranks < 1:
            raise ValueError("process grid needs at least one rank")
        q = math.isqrt(n_ranks)
        if q * q != n_ranks:
            warnings.warn(
                f"{n_ranks} ranks do not form a square grid; using the "
                f"largest {q}x{q} subgrid and idling {n_ranks - q * q} "
                "surplus ranks",
                RuntimeWarning,
                stacklevel=2,
            )
        return cls(q * q)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("process grid needs at least one rank")
        q = math.isqrt(self.n_ranks)
        if q * q != self.n_ranks:
            raise ValueError(
                f"process count {self.n_ranks} is not a perfect square; "
                "the 2D distribution requires a square process grid"
            )

    # ------------------------------------------------------------------
    @property
    def q(self) -> int:
        """Grid side length ``√p``."""
        return math.isqrt(self.n_ranks)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.q, self.q)

    # ------------------------------------------------------------------
    def rank_of(self, row: int, col: int) -> int:
        """Rank of the process at grid position ``(row, col)``."""
        q = self.q
        if not (0 <= row < q and 0 <= col < q):
            raise IndexError(f"grid position ({row}, {col}) outside {q}x{q} grid")
        return row * q + col

    def coords_of(self, rank: int) -> tuple[int, int]:
        """Grid position ``(row, col)`` of ``rank``."""
        if not (0 <= rank < self.n_ranks):
            raise IndexError(f"rank {rank} outside communicator of size {self.n_ranks}")
        return divmod(rank, self.q)

    def row_of(self, rank: int) -> int:
        return self.coords_of(rank)[0]

    def col_of(self, rank: int) -> int:
        return self.coords_of(rank)[1]

    def transpose_rank(self, rank: int) -> int:
        """Rank at the transposed grid position (used by Algorithm 1/2)."""
        row, col = self.coords_of(rank)
        return self.rank_of(col, row)

    # ------------------------------------------------------------------
    def row_group(self, row: int) -> list[int]:
        """Ranks forming grid row ``row`` (the row communicator)."""
        q = self.q
        if not (0 <= row < q):
            raise IndexError(f"row {row} outside {q}x{q} grid")
        return [self.rank_of(row, c) for c in range(q)]

    def col_group(self, col: int) -> list[int]:
        """Ranks forming grid column ``col`` (the column communicator)."""
        q = self.q
        if not (0 <= col < q):
            raise IndexError(f"col {col} outside {q}x{q} grid")
        return [self.rank_of(r, col) for r in range(q)]

    def all_ranks(self) -> list[int]:
        return list(range(self.n_ranks))

    def iter_coords(self):
        """Iterate ``(rank, row, col)`` over all grid positions."""
        for rank in range(self.n_ranks):
            row, col = self.coords_of(rank)
            yield rank, row, col

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ProcessGrid({self.q}x{self.q}, p={self.n_ranks})"
