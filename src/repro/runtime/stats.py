"""Per-category accounting of communication and computation.

The paper breaks running time down into named phases:

* Insertion breakdown (Fig. 7): *Redist. sort*, *Redist. comm.*, *Memory
  management*, *Local construct*, *Local addition*.
* Dynamic SpGEMM breakdown (Fig. 12): *Send/Recv*, *Bcast*, *Local Mult.*,
  *Scatter*, *Reduce-Scatter*.

:class:`CommStats` accumulates, per category: number of operations, number
of point-to-point messages, bytes moved, modelled (parallel) seconds and
measured (single-core wall-clock) seconds.  The benchmark harness snapshots
and diffs these counters to regenerate the breakdown figures.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "StatCategory",
    "CategoryTotals",
    "CommStats",
    "set_fault_hook",
]

#: Optional fault-injection hook consulted on every recorded observation
#: that moves messages.  Installed by :mod:`repro.runtime.faults`; returns
#: ``(retransmitted_messages, retransmitted_bytes, delay_seconds)`` for the
#: traffic the injected faults add (charged to ``StatCategory.RECOVERY``),
#: or ``None`` when no fault fires.  Kept here (not in the backends) so one
#: hook covers every communicator that funnels through ``CommStats``.
_FAULT_HOOK: "Callable[[str, int, int], tuple[int, int, float] | None] | None" = None


def set_fault_hook(
    hook: "Callable[[str, int, int], tuple[int, int, float] | None] | None",
) -> None:
    """Install (or clear, with ``None``) the global fault-injection hook."""
    global _FAULT_HOOK
    _FAULT_HOOK = hook


class StatCategory:
    """Well-known category names used throughout the repository."""

    # Figure 7 (insertion breakdown)
    REDIST_SORT = "redist_sort"
    REDIST_COMM = "redist_comm"
    MEMORY_MANAGEMENT = "memory_management"
    LOCAL_CONSTRUCT = "local_construct"
    LOCAL_ADDITION = "local_addition"

    # Figure 12 (dynamic SpGEMM breakdown)
    SEND_RECV = "send_recv"
    BCAST = "bcast"
    LOCAL_MULT = "local_mult"
    SCATTER = "scatter"
    REDUCE_SCATTER = "reduce_scatter"

    # generic buckets
    ALLTOALL = "alltoall"
    REDUCE = "reduce"
    ALLGATHER = "allgather"
    ALLREDUCE = "allreduce"
    GATHER = "gather"
    LOCAL_COMPUTE = "local_compute"
    OTHER = "other"

    #: traffic spent recovering from a fault: shipping snapshot blocks back
    #: into a rebuilt world, retransmitting dropped messages, and the
    #: modelled delay of slowed ones.  Kept out of every other category so
    #: a crash-and-restore run stays byte-comparable to the uninterrupted
    #: run on all non-recovery categories.
    RECOVERY = "recovery"

    INSERTION_BREAKDOWN = (
        REDIST_SORT,
        REDIST_COMM,
        MEMORY_MANAGEMENT,
        LOCAL_CONSTRUCT,
        LOCAL_ADDITION,
    )
    SPGEMM_BREAKDOWN = (
        SEND_RECV,
        BCAST,
        LOCAL_MULT,
        SCATTER,
        REDUCE_SCATTER,
    )


@dataclass
class CategoryTotals:
    """Accumulated totals for one category."""

    operations: int = 0
    messages: int = 0
    bytes: int = 0
    modeled_seconds: float = 0.0
    measured_seconds: float = 0.0

    def add(
        self,
        *,
        operations: int = 0,
        messages: int = 0,
        nbytes: int = 0,
        modeled_seconds: float = 0.0,
        measured_seconds: float = 0.0,
    ) -> None:
        """Accumulate one observation into the totals."""
        self.operations += operations
        self.messages += messages
        self.bytes += nbytes
        self.modeled_seconds += modeled_seconds
        self.measured_seconds += measured_seconds

    @classmethod
    def from_dict(cls, data: "dict[str, float]") -> "CategoryTotals":
        """Rebuild totals from their :meth:`as_dict` form."""
        return cls(
            operations=int(data.get("operations", 0)),
            messages=int(data.get("messages", 0)),
            bytes=int(data.get("bytes", 0)),
            modeled_seconds=float(data.get("modeled_seconds", 0.0)),
            measured_seconds=float(data.get("measured_seconds", 0.0)),
        )

    def copy(self) -> "CategoryTotals":
        """An independent copy of the totals."""
        return CategoryTotals(
            operations=self.operations,
            messages=self.messages,
            bytes=self.bytes,
            modeled_seconds=self.modeled_seconds,
            measured_seconds=self.measured_seconds,
        )

    def minus(self, other: "CategoryTotals") -> "CategoryTotals":
        """Element-wise difference ``self - other`` (for snapshot diffs)."""
        return CategoryTotals(
            operations=self.operations - other.operations,
            messages=self.messages - other.messages,
            bytes=self.bytes - other.bytes,
            modeled_seconds=self.modeled_seconds - other.modeled_seconds,
            measured_seconds=self.measured_seconds - other.measured_seconds,
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly view of the totals."""
        return {
            "operations": self.operations,
            "messages": self.messages,
            "bytes": self.bytes,
            "modeled_seconds": self.modeled_seconds,
            "measured_seconds": self.measured_seconds,
        }


@dataclass
class CommStats:
    """Accumulates per-category totals for a simulated run."""

    categories: dict[str, CategoryTotals] = field(default_factory=dict)
    #: when set, every recorded observation lands in this category instead
    #: of its nominal one — the restore path uses it so any traffic during
    #: state reconstruction is accounted as recovery, never as ordinary
    #: protocol traffic (which must stay byte-identical to a clean run)
    redirect_to: str | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    def category(self, name: str) -> CategoryTotals:
        """The (created-on-demand) totals bucket for ``name``."""
        bucket = self.categories.get(name)
        if bucket is None:
            bucket = CategoryTotals()
            self.categories[name] = bucket
        return bucket

    def record(
        self,
        name: str,
        *,
        operations: int = 0,
        messages: int = 0,
        nbytes: int = 0,
        modeled_seconds: float = 0.0,
        measured_seconds: float = 0.0,
    ) -> None:
        """Add an observation to category ``name``."""
        if self.redirect_to is not None:
            name = self.redirect_to
        self.category(name).add(
            operations=operations,
            messages=messages,
            nbytes=nbytes,
            modeled_seconds=modeled_seconds,
            measured_seconds=measured_seconds,
        )
        if (
            _FAULT_HOOK is not None
            and messages > 0
            and name != StatCategory.RECOVERY
        ):
            fault = _FAULT_HOOK(name, messages, nbytes)
            if fault is not None:
                retrans_messages, retrans_bytes, delay_seconds = fault
                self.category(StatCategory.RECOVERY).add(
                    operations=1,
                    messages=retrans_messages,
                    nbytes=retrans_bytes,
                    modeled_seconds=delay_seconds,
                )

    @contextmanager
    def redirect(self, name: str) -> "Iterator[CommStats]":
        """Route every observation recorded inside the block into ``name``."""
        previous = self.redirect_to
        self.redirect_to = name
        try:
            yield self
        finally:
            self.redirect_to = previous

    @classmethod
    def from_dict(cls, data: "dict[str, dict[str, float]]") -> "CommStats":
        """Rebuild statistics from their :meth:`as_dict` form."""
        return cls(
            categories={
                name: CategoryTotals.from_dict(totals)
                for name, totals in data.items()
            }
        )

    # ------------------------------------------------------------------
    def total_bytes(self, names: Iterable[str] | None = None) -> int:
        """Total communicated bytes over the given categories (or all)."""
        names = list(names) if names is not None else list(self.categories)
        return sum(self.categories[n].bytes for n in names if n in self.categories)

    def total_modeled_seconds(self, names: Iterable[str] | None = None) -> float:
        """Total modelled seconds over the given categories (or all)."""
        names = list(names) if names is not None else list(self.categories)
        return sum(
            self.categories[n].modeled_seconds
            for n in names
            if n in self.categories
        )

    def total_messages(self, names: Iterable[str] | None = None) -> int:
        """Total message count over the given categories (or all)."""
        names = list(names) if names is not None else list(self.categories)
        return sum(self.categories[n].messages for n in names if n in self.categories)

    # ------------------------------------------------------------------
    def snapshot(self) -> "CommStats":
        """A deep copy of the current counters (for later diffing)."""
        return CommStats(
            categories={name: tot.copy() for name, tot in self.categories.items()}
        )

    def diff(self, since: "CommStats") -> "CommStats":
        """Counters accumulated since ``since`` was snapshotted."""
        out = CommStats()
        for name, tot in self.categories.items():
            base = since.categories.get(name, CategoryTotals())
            out.categories[name] = tot.minus(base)
        return out

    def merge(self, other: "CommStats") -> "CommStats":
        """Accumulate ``other``'s per-category totals into ``self``.

        Used to combine the per-process partial statistics of a
        multi-process run into one global view (each process records only
        the traffic of the logical ranks it owns); returns ``self`` so
        merges chain and the result can feed ``Communicator.host_fold``.
        """
        for name, tot in other.categories.items():
            self.category(name).add(
                operations=tot.operations,
                messages=tot.messages,
                nbytes=tot.bytes,
                modeled_seconds=tot.modeled_seconds,
                measured_seconds=tot.measured_seconds,
            )
        return self

    def reset(self) -> None:
        """Drop all accumulated counters."""
        self.categories.clear()

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-friendly view of all categories."""
        return {name: tot.as_dict() for name, tot in sorted(self.categories.items())}

    def breakdown(self, names: Iterable[str]) -> dict[str, float]:
        """Modelled seconds per named category (0.0 when absent)."""
        return {
            name: self.categories.get(name, CategoryTotals()).modeled_seconds
            for name in names
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}: {tot.modeled_seconds * 1e3:.3f} ms / {tot.bytes} B"
            for name, tot in sorted(self.categories.items())
        )
        return f"CommStats({parts})"
