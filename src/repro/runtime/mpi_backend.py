"""mpi4py-backed communicator for single- and multi-process worlds.

:class:`MPIBackend` runs the same orchestration-style
:class:`~repro.runtime.backend.Communicator` surface as
:class:`~repro.runtime.simmpi.SimMPI`, but on top of a *real* MPI
communicator, in SPMD fashion: every process executes the same
orchestration program, logical ranks are placed on processes by a
pluggable :class:`~repro.runtime.partitioner.Partitioner` (round-robin —
rank ``r`` on process ``r % world_size`` — by default; see
``docs/backends.md`` for the nnz-aware and locality-aware strategies),
``run_local`` executes kernels only for owned ranks, and the collectives
accept partial per-process payload mappings and merge them through the
corresponding mpi4py collectives.  ``mpiexec -n 1``, ``mpiexec -n p`` and oversubscribed
worlds (more processes than logical ranks — the surplus processes idle
with a warning) are all supported; per-process memory and local compute
scale with the number of *owned* ranks, which is the point of running
multi-process in the first place.

When mpi4py is not installed (or ``force_emulator=True``) the underlying
communicator is :class:`EmulatedComm` — a size-1 stand-in for
``mpi4py.MPI.COMM_WORLD`` in the spirit of cctbx's ``libtbx.mpi4py``
fallback.  With a world of one process every logical rank is owned locally,
so the backend behaves like a cost-model-free ``SimMPI``: identical payload
routing and identical per-category byte / message accounting, with
``elapsed()`` reporting real wall-clock time instead of modelled time.
Multi-process behaviour can be exercised without mpi4py through
:class:`repro.runtime.loopback.LoopbackWorld`, which runs each world
process on a thread behind the same communicator interface.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.perf.recorder import perf_count, record_comm_event
from repro.runtime.backend import CommRequest, check_rank, normalize_group
from repro.runtime.config import MachineModel
from repro.runtime.partitioner import Partitioner, make_partitioner, verify_placement
from repro.runtime.simmpi import payload_nbytes
from repro.runtime.stats import CommStats, StatCategory

__all__ = [
    "EmulatedComm",
    "MPIBackend",
    "load_mpi",
    "mpi_is_available",
    "world_rank",
    "world_size",
]


class EmulatedComm:
    """Single-process stand-in for ``mpi4py.MPI.COMM_WORLD``.

    Implements the lowercase (pickle-based) mpi4py communicator methods the
    backend uses, for a world of exactly one rank, so the same
    :class:`MPIBackend` code path runs whether or not mpi4py is installed.
    """

    def Get_rank(self) -> int:
        """World rank of this process (always 0)."""
        return 0

    def Get_size(self) -> int:
        """World size (always 1)."""
        return 1

    def barrier(self) -> None:
        """No-op: a single-rank world is always synchronised."""

    Barrier = barrier

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast: the single rank receives its own object."""
        self._check_root(root)
        return obj

    def gather(self, sendobj: Any, root: int = 0) -> list[Any]:
        """Gather: a one-element list of the single rank's payload."""
        self._check_root(root)
        return [sendobj]

    def allgather(self, sendobj: Any) -> list[Any]:
        """All-gather: a one-element list of the single rank's payload."""
        return [sendobj]

    def scatter(self, sendobj: Sequence[Any], root: int = 0) -> Any:
        """Scatter: unwrap the single rank's share."""
        self._check_root(root)
        if len(sendobj) != 1:
            raise ValueError("scatter payload must have one entry per rank")
        return sendobj[0]

    def alltoall(self, sendobj: Sequence[Any]) -> list[Any]:
        """All-to-all: the single rank's bucket comes straight back."""
        if len(sendobj) != 1:
            raise ValueError("alltoall payload must have one entry per rank")
        return list(sendobj)

    def reduce(self, sendobj: Any, op: Any = None, root: int = 0) -> Any:
        """Reduce of one payload: the payload itself."""
        self._check_root(root)
        return sendobj

    def allreduce(self, sendobj: Any, op: Any = None) -> Any:
        """Allreduce of one payload: the payload itself."""
        return sendobj

    @staticmethod
    def _check_root(root: int) -> None:
        if root != 0:
            raise ValueError(f"emulated single-rank world has no rank {root}")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "EmulatedComm(size=1)"


def world_rank() -> int:
    """This process's rank in ``COMM_WORLD`` (0 when mpi4py is absent).

    The one place that answers "am I one process of an ``mpiexec`` launch?"
    — used by test harnesses and the benchmark driver to elect a single
    writer for shared output files.
    """
    try:
        from mpi4py import MPI

        return int(MPI.COMM_WORLD.Get_rank())
    except ImportError:
        return 0


def world_size() -> int:
    """Size of ``COMM_WORLD`` (1 when mpi4py is absent)."""
    try:
        from mpi4py import MPI

        return int(MPI.COMM_WORLD.Get_size())
    except ImportError:
        return 1


def mpi_is_available() -> bool:
    """``True`` when the real ``mpi4py`` package can be imported."""
    try:
        import mpi4py  # noqa: F401
    except ImportError:
        return False
    return True


def load_mpi(force_emulator: bool = False):
    """Return ``(comm, is_real)``: mpi4py's ``COMM_WORLD`` or the emulator.

    Follows the cctbx ``libtbx.mpi4py`` idiom — try the real package, warn
    once and fall back to the single-rank emulator when it is absent.
    """
    if not force_emulator:
        try:
            from mpi4py import MPI

            return MPI.COMM_WORLD, True
        except ImportError:
            warnings.warn(
                "mpi4py is not installed; the 'mpi' backend runs on the "
                "built-in single-rank emulator",
                RuntimeWarning,
                stacklevel=2,
            )
    return EmulatedComm(), False


class MPIBackend:
    """Orchestration-style communicator over mpi4py (or its emulator).

    Statistics semantics: *logical* messages and bytes are recorded exactly
    like :class:`SimMPI` (a payload travelling between two distinct logical
    ranks counts, even when both ranks live on the same process), so
    communication-volume comparisons are backend-independent.  Per-category
    ``modeled_seconds`` record measured wall-clock time — on a real backend
    the model *is* the measurement.  With a multi-process world each process
    records only the traffic of the logical ranks it owns.
    """

    def __init__(
        self,
        n_ranks: int,
        machine: MachineModel | None = None,
        *,
        track_time: bool = True,
        comm: Any = None,
        force_emulator: bool = False,
        partitioner: str | Partitioner | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("communicator needs at least one rank")
        self.n_ranks = int(n_ranks)
        self.machine = machine if machine is not None else MachineModel()
        self.stats = CommStats()
        self.track_time = track_time
        if comm is None:
            comm, is_real = load_mpi(force_emulator)
        else:
            is_real = not isinstance(comm, EmulatedComm)
        self._comm = comm
        self.is_real_mpi = is_real
        self.world_size = int(comm.Get_size())
        self.world_rank = int(comm.Get_rank())
        if self.world_size > self.n_ranks:
            # Oversubscribed world: processes with no owned logical rank
            # idle through the SPMD program (they still participate in the
            # world-level collectives so nothing deadlocks).
            warnings.warn(
                f"MPI world of {self.world_size} processes hosts only "
                f"{self.n_ranks} logical ranks; "
                f"{self.world_size - self.n_ranks} processes will idle",
                RuntimeWarning,
                stacklevel=2,
            )
        self._t0 = time.perf_counter()
        #: (src, dst) -> FIFO of payloads isent between two locally-owned
        #: logical ranks (delivered at the matching irecv wait)
        self._p2p_mail: dict[tuple[int, int], list[Any]] = {}
        # The logical-rank -> process map.  The default partitioner
        # reproduces the historical round-robin (``r % world_size``)
        # placement exactly; grid-/weight-aware placements are installed
        # later through :meth:`set_placement` (strategies may need the
        # process grid or nnz estimates the backend does not know about).
        self.partitioner = make_partitioner(partitioner)
        self._placement: dict[int, int] = self.partitioner.placement(
            self.n_ranks, self.world_size
        )
        verify_placement(self._placement, self.n_ranks, self.world_size)
        #: physical cross-process traffic recorded by this process
        #: (deterministic modelled counts, not wire measurements)
        self.interprocess_bytes = 0
        self.interprocess_messages = 0

    # ------------------------------------------------------------------
    # rank ownership
    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of logical ranks."""
        return self.n_ranks

    def owner_of(self, rank: int) -> int:
        """World rank of the process hosting logical ``rank``."""
        check_rank(self.n_ranks, rank)
        return self._placement[rank]

    def owns(self, rank: int) -> bool:
        """``True`` when this process hosts logical ``rank``."""
        return self.owner_of(rank) == self.world_rank

    def owned_ranks(self, group: Sequence[int] | None = None) -> list[int]:
        """The ranks of ``group`` (default: all) hosted by this process."""
        return [r for r in normalize_group(self.n_ranks, group) if self.owns(r)]

    def placement(self) -> dict[int, int]:
        """Copy of the current ``logical rank -> process`` map."""
        return dict(self._placement)

    def set_placement(self, placement: Mapping[int, int]) -> None:
        """Install a new logical-rank→process map.

        Must be called *before* any per-rank state is materialised (every
        process must call it with the identical map — placement is an SPMD
        agreement); to move already-constructed state use
        :meth:`migrate_ownership` instead.
        """
        verify_placement(placement, self.n_ranks, self.world_size)
        self._placement = {int(r): int(p) for r, p in placement.items()}

    def migrate_ownership(
        self,
        new_placement: Mapping[int, int],
        block_maps: Sequence[dict[int, Any]],
        *,
        category: str = StatCategory.REDIST_COMM,
    ) -> int:
        """Move owned per-rank state to the owners of ``new_placement``.

        ``block_maps`` are partial ``rank -> block`` mappings (e.g. the
        ``DistMatrixBase.blocks`` of every live matrix); blocks whose rank
        changes process are shipped *as pickled objects* through one
        bucketed all-to-all — preserving their exact internal state keeps
        scenario results byte-identical across a migration — and the new
        placement is installed on completion.  Charged under ``category``
        (redistribution traffic); returns the number of blocks moved.
        """
        verify_placement(new_placement, self.n_ranks, self.world_size)
        start = time.perf_counter()
        outgoing: list[list[tuple[int, int, Any]]] = [
            [] for _ in range(self.world_size)
        ]
        total_bytes = 0
        moved = 0
        for index, blocks in enumerate(block_maps):
            for rank in sorted(blocks):
                if not self.owns(rank):
                    continue
                new_owner = int(new_placement[rank])
                if new_owner == self.world_rank:
                    continue
                block = blocks.pop(rank)
                total_bytes += payload_nbytes(block)
                moved += 1
                outgoing[new_owner].append((index, rank, block))
        if self.world_size > 1:
            arrived = self._comm.alltoall(outgoing)
            for bucket in arrived:
                for index, rank, block in bucket:
                    block_maps[index][rank] = block
        self.interprocess_bytes += total_bytes
        self.interprocess_messages += moved
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=moved,
            nbytes=total_bytes,
            modeled_seconds=time.perf_counter() - start,
        )
        perf_count("partition.migrated_blocks", moved)
        self._placement = {int(r): int(p) for r, p in new_placement.items()}
        return moved

    # ------------------------------------------------------------------
    # physical cross-process traffic
    # ------------------------------------------------------------------
    def interprocess_comm(self) -> dict[str, int]:
        """This process's cross-process traffic ``{"bytes", "messages"}``.

        A deterministic model of the traffic that actually crosses a
        process boundary under the current placement — unlike the
        *logical* ``stats`` (which are placement-invariant by design),
        this is exactly what a better placement shrinks.  Counted once
        per transfer: sender-side for ``exchange``/``alltoallv``/
        ``gather``/``reduce``/block migration, receiver-side for
        ``bcast``/``allgather``/``irecv``, root-side for ``scatter``.
        """
        return {
            "bytes": int(self.interprocess_bytes),
            "messages": int(self.interprocess_messages),
        }

    def global_interprocess_comm(self) -> dict[str, int]:
        """World-summed cross-process traffic (uncharged control plane)."""
        return self.host_fold(
            self.interprocess_comm(),
            lambda a, b: {
                "bytes": a["bytes"] + b["bytes"],
                "messages": a["messages"] + b["messages"],
            },
        )

    # ------------------------------------------------------------------
    # control plane (uncharged: metadata exchange, not payload traffic)
    # ------------------------------------------------------------------
    def host_merge(self, mapping: Mapping[int, Any]) -> dict[int, Any]:
        """Union partial per-rank mappings across the world (uncharged)."""
        merged: dict[int, Any] = {}
        if self.world_size == 1:
            merged.update(mapping)
            return merged
        for part in self._comm.allgather(dict(mapping)):
            merged.update(part)
        return merged

    def host_fold(self, value: Any, combine: Callable[[Any, Any], Any]) -> Any:
        """Fold one value per process, ascending world rank (uncharged)."""
        if self.world_size == 1:
            return value
        parts = self._comm.allgather(value)
        folded = parts[0]
        for part in parts[1:]:
            folded = combine(folded, part)
        return folded

    # ------------------------------------------------------------------
    # clock management
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Wall-clock seconds since creation / the last clock reset."""
        return time.perf_counter() - self._t0

    def reset_clock(self) -> None:
        """Restart the wall-clock behind :meth:`elapsed`."""
        self._t0 = time.perf_counter()

    def reset(self) -> None:
        """Reset the clock *and* statistics (drops undelivered isend payloads)."""
        self.reset_clock()
        self._p2p_mail.clear()
        self.stats.reset()
        self.interprocess_bytes = 0
        self.interprocess_messages = 0

    def barrier(self, group: Sequence[int] | None = None) -> None:
        """Synchronise the processes hosting ``group`` (no-op world of 1)."""
        normalize_group(self.n_ranks, group)
        if self.world_size > 1:
            self._comm.barrier()

    @contextmanager
    def timer(self):
        """Context manager measuring wall-clock time of a region."""

        class _Timer:
            seconds = 0.0

        holder = _Timer()
        start = self.elapsed()
        yield holder
        holder.seconds = self.elapsed() - start

    # ------------------------------------------------------------------
    # local computation
    # ------------------------------------------------------------------
    def run_local(
        self,
        rank: int,
        fn: Callable[..., Any],
        *args: Any,
        category: str = StatCategory.LOCAL_COMPUTE,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn`` as rank-local work; ``None`` on non-owning processes."""
        check_rank(self.n_ranks, rank)
        if not self.owns(rank):
            return None
        if not self.track_time:
            return fn(*args, **kwargs)
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        measured = time.perf_counter() - start
        record_comm_event(
            self.stats,
            category,
            operations=1,
            modeled_seconds=measured,
            measured_seconds=measured,
        )
        return result

    def map_local(
        self,
        fn: Callable[..., Any],
        per_rank_args: Sequence[tuple] | Mapping[int, tuple],
        *,
        category: str = StatCategory.LOCAL_COMPUTE,
        group: Sequence[int] | None = None,
    ) -> dict[int, Any]:
        """Run ``fn`` per owned rank; returns ``rank -> result`` for them."""
        ranks = normalize_group(self.n_ranks, group)
        if isinstance(per_rank_args, Mapping):
            items = [(r, per_rank_args[r]) for r in ranks if r in per_rank_args]
        else:
            if len(per_rank_args) != len(ranks):
                raise ValueError(
                    "per_rank_args length does not match the group size"
                )
            items = list(zip(ranks, per_rank_args))
        results: dict[int, Any] = {}
        for rank, args in items:
            if self.owns(rank):
                results[rank] = self.run_local(rank, fn, *args, category=category)
        return results

    def charge_local(
        self,
        rank: int,
        measured_seconds: float,
        *,
        category: str = StatCategory.LOCAL_COMPUTE,
    ) -> None:
        """Record already-measured local time for an owned rank."""
        check_rank(self.n_ranks, rank)
        if not self.owns(rank):
            return
        record_comm_event(
            self.stats,
            category,
            operations=1,
            modeled_seconds=measured_seconds,
            measured_seconds=measured_seconds,
        )

    # ------------------------------------------------------------------
    # point-to-point communication
    # ------------------------------------------------------------------
    def exchange(
        self,
        messages: Iterable[tuple[int, int, Any]],
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> dict[int, list[tuple[int, Any]]]:
        """Deliver point-to-point messages posted by owned source ranks."""
        start = time.perf_counter()
        inbox: dict[int, list[tuple[int, Any]]] = {}
        outgoing: list[list[tuple[int, int, Any]]] = [
            [] for _ in range(self.world_size)
        ]
        total_bytes = 0
        n_msgs = 0
        for src, dst, payload in messages:
            check_rank(self.n_ranks, src)
            check_rank(self.n_ranks, dst)
            if not self.owns(src):
                continue
            # Byte accounting mirrors SimMPI exactly: self-messages count
            # their payload bytes but not as messages.
            nbytes = payload_nbytes(payload)
            total_bytes += nbytes
            if src != dst:
                n_msgs += 1
            owner = self.owner_of(dst)
            if owner == self.world_rank:
                inbox.setdefault(dst, []).append((src, payload))
            else:
                self.interprocess_bytes += nbytes
                self.interprocess_messages += 1
                outgoing[owner].append((src, dst, payload))
        if self.world_size > 1:
            arrived = self._comm.alltoall(outgoing)
            for bucket in arrived:
                for src, dst, payload in bucket:
                    inbox.setdefault(dst, []).append((src, payload))
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=time.perf_counter() - start,
        )
        return inbox

    def sendrecv(
        self,
        rank_a: int,
        rank_b: int,
        payload_ab: Any,
        payload_ba: Any,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> tuple[Any, Any]:
        """Pairwise exchange: returns ``(received_by_a, received_by_b)``."""
        inbox = self.exchange(
            [(rank_a, rank_b, payload_ab), (rank_b, rank_a, payload_ba)],
            category=category,
        )
        recv_a = inbox.get(rank_a, [(rank_b, None)])[0][1]
        recv_b = inbox.get(rank_b, [(rank_a, None)])[0][1]
        return recv_a, recv_b

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def alltoallv(
        self,
        sendbufs: Mapping[int, Mapping[int, Any]],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLTOALL,
    ) -> dict[int, dict[int, Any]]:
        """Personalised all-to-all; returns ``recvbufs[dst][src]``."""
        start = time.perf_counter()
        ranks = normalize_group(self.n_ranks, group)
        rank_set = set(ranks)
        for src in sendbufs:
            check_rank(self.n_ranks, src)
            if src not in rank_set:
                raise ValueError(f"sender rank {src} is not part of the group")
            for dst in sendbufs[src]:
                if dst not in rank_set:
                    raise ValueError(
                        f"destination rank {dst} is not part of the group"
                    )
        recvbufs: dict[int, dict[int, Any]] = {
            r: {} for r in ranks if self.owns(r)
        }
        outgoing: list[list[tuple[int, int, Any]]] = [
            [] for _ in range(self.world_size)
        ]
        total_bytes = 0
        n_msgs = 0
        for src in ranks:
            if not self.owns(src):
                continue
            for dst, payload in sendbufs.get(src, {}).items():
                if src != dst:
                    total_bytes += payload_nbytes(payload)
                    n_msgs += 1
                owner = self.owner_of(dst)
                if owner == self.world_rank:
                    recvbufs[dst][src] = payload
                else:
                    self.interprocess_bytes += payload_nbytes(payload)
                    self.interprocess_messages += 1
                    outgoing[owner].append((src, dst, payload))
        if self.world_size > 1:
            arrived = self._comm.alltoall(outgoing)
            for bucket in arrived:
                for src, dst, payload in bucket:
                    recvbufs[dst][src] = payload
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=time.perf_counter() - start,
        )
        return recvbufs

    def bcast(
        self,
        root: int,
        payload: Any,
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.BCAST,
    ) -> dict[int, Any]:
        """Broadcast from ``root``; returns ``rank -> payload``."""
        start = time.perf_counter()
        ranks = normalize_group(self.n_ranks, group)
        if root not in ranks:
            raise ValueError(f"broadcast root {root} is not part of the group")
        value = payload
        if self.world_size > 1:
            value = self._comm.bcast(
                payload if self.owns(root) else None, root=self.owner_of(root)
            )
        # Each receiving rank accounts its incoming copy; summed over all
        # processes this equals SimMPI's global (g-1) messages.
        n_recv = sum(1 for r in ranks if self.owns(r) and r != root)
        nbytes = payload_nbytes(value)
        if self.world_size > 1 and not self.owns(root) and any(
            self.owns(r) for r in ranks
        ):
            # One physical copy crosses into this process from root's.
            self.interprocess_bytes += nbytes
            self.interprocess_messages += 1
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_recv,
            nbytes=nbytes * n_recv,
            modeled_seconds=time.perf_counter() - start,
        )
        return {r: value for r in ranks}

    def gather(
        self,
        root: int,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.GATHER,
    ) -> dict[int, Any]:
        """Gather one payload per group member onto ``root``."""
        start = time.perf_counter()
        ranks = normalize_group(self.n_ranks, group)
        if root not in ranks:
            raise ValueError(f"gather root {root} is not part of the group")
        mine = {src: payloads.get(src) for src in ranks if self.owns(src)}
        total_bytes = sum(
            payload_nbytes(v) for src, v in mine.items() if src != root
        )
        n_msgs = sum(1 for src in mine if src != root)
        if self.world_size > 1 and mine and not self.owns(root):
            # This process's contributions cross to the root's process.
            self.interprocess_bytes += sum(
                payload_nbytes(v) for v in mine.values()
            )
            self.interprocess_messages += 1
        merged = mine
        if self.world_size > 1:
            parts = self._comm.gather(mine, root=self.owner_of(root))
            if parts is not None:
                merged = {}
                for part in parts:
                    merged.update(part)
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=time.perf_counter() - start,
        )
        return {src: merged.get(src) for src in ranks}

    def scatter(
        self,
        root: int,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.SCATTER,
    ) -> dict[int, Any]:
        """Scatter rank-specific payloads from ``root`` to the group."""
        start = time.perf_counter()
        ranks = normalize_group(self.n_ranks, group)
        if root not in ranks:
            raise ValueError(f"scatter root {root} is not part of the group")
        total_bytes = 0
        n_msgs = 0
        if self.owns(root):
            for dst in ranks:
                if dst != root:
                    total_bytes += payload_nbytes(payloads.get(dst))
                    n_msgs += 1
                if self.owner_of(dst) != self.world_rank:
                    # Root-side: this share crosses to dst's process.
                    self.interprocess_bytes += payload_nbytes(payloads.get(dst))
                    self.interprocess_messages += 1
        part: Mapping[int, Any] = payloads
        if self.world_size > 1:
            parts = None
            if self.owns(root):
                parts = [
                    {r: payloads.get(r) for r in ranks if self.owner_of(r) == q}
                    for q in range(self.world_size)
                ]
            part = self._comm.scatter(parts, root=self.owner_of(root))
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=time.perf_counter() - start,
        )
        return {dst: part.get(dst) for dst in ranks if self.owns(dst)}

    def allgather(
        self,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLGATHER,
    ) -> dict[int, dict[int, Any]]:
        """All-gather: every rank receives every payload."""
        start = time.perf_counter()
        ranks = normalize_group(self.n_ranks, group)
        g = len(ranks)
        mine = {r: payloads.get(r) for r in ranks if self.owns(r)}
        merged = dict(mine)
        if self.world_size > 1:
            for part in self._comm.allgather(mine):
                merged.update(part)
        gathered = {r: merged.get(r) for r in ranks}
        sizes = {r: payload_nbytes(v) for r, v in gathered.items()}
        total = sum(sizes.values())
        # Per owned rank: g-1 incoming messages carrying everyone else's
        # payload; summed over processes this equals SimMPI's global
        # g·(g-1) messages and total·(g-1) bytes.
        owned = [r for r in ranks if self.owns(r)]
        if self.world_size > 1 and owned:
            # Receiver-side: one copy of every remotely-owned payload
            # crosses into this process.
            remote = [r for r in ranks if not self.owns(r)]
            self.interprocess_bytes += sum(sizes[r] for r in remote)
            self.interprocess_messages += len(remote)
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=len(owned) * (g - 1),
            nbytes=sum(total - sizes[r] for r in owned),
            modeled_seconds=time.perf_counter() - start,
        )
        return {r: dict(gathered) for r in ranks}

    def reduce(
        self,
        root: int,
        payloads: Mapping[int, Any],
        combine: Callable[[Any, Any], Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.REDUCE,
        measure_combine: bool = True,
    ) -> Any:
        """Reduce one payload per rank onto ``root``.

        ``combine`` must be associative; with a multi-process world it must
        also tolerate the cross-process fold order (root's process first,
        then ascending world rank).  The reduced value is returned on the
        process owning ``root`` (and, with a single-process world, always).
        """
        start = time.perf_counter()
        ranks = normalize_group(self.n_ranks, group)
        if root not in ranks:
            raise ValueError(f"reduce root {root} is not part of the group")
        order = [root] + [r for r in ranks if r != root]
        total_bytes = sum(
            payload_nbytes(payloads.get(r))
            for r in order[1:]
            if self.owns(r)
        )
        partial: Any = None
        have_partial = False
        for r in order:
            if not self.owns(r):
                continue
            value = payloads.get(r)
            if not have_partial:
                partial, have_partial = value, True
            else:
                partial = combine(partial, value)
        result = partial
        if self.world_size > 1:
            if have_partial and not self.owns(root):
                # Sender-side: the local partial crosses to root's process.
                self.interprocess_bytes += payload_nbytes(partial)
                self.interprocess_messages += 1
            parts = self._comm.gather(
                (have_partial, partial), root=self.owner_of(root)
            )
            if parts is None:
                # Not the process owning the root: the reduced value is not
                # available here.  Returning the local partial fold would be
                # silently wrong.
                result = None
            else:
                folded: Any = None
                have = False
                for got, value in parts:
                    if not got:
                        continue
                    if not have:
                        folded, have = value, True
                    else:
                        folded = combine(folded, value)
                result = folded
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=sum(1 for r in order[1:] if self.owns(r)),
            nbytes=total_bytes,
            modeled_seconds=time.perf_counter() - start,
        )
        return result

    def allreduce(
        self,
        payloads: Mapping[int, Any],
        combine: Callable[[Any, Any], Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLREDUCE,
    ) -> dict[int, Any]:
        """Reduce-then-broadcast allreduce; returns ``rank -> result``."""
        ranks = normalize_group(self.n_ranks, group)
        root = ranks[0]
        result = self.reduce(
            root, payloads, combine, group=ranks, category=category
        )
        return self.bcast(root, result, group=ranks, category=category)

    # ------------------------------------------------------------------
    # nonblocking primitives
    # ------------------------------------------------------------------
    def _p2p_tag(self, src: int, dst: int) -> int:
        """MPI tag matching one logical ``(src, dst)`` channel.

        Messages between the same pair match in FIFO order (MPI guarantees
        ordering per source/tag), which is exactly the posting-order
        semantics the simulator implements.
        """
        return src * self.n_ranks + dst + 1

    @staticmethod
    def _noop_request(op: str, category: str) -> CommRequest:
        """A request for the non-owning side of an operation (resolves to None)."""
        return CommRequest(op, category, lambda: None)

    def isend(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> CommRequest:
        """Post a nonblocking send from logical ``src`` to logical ``dst``.

        On the process owning ``src``: delivered through an in-process
        mailbox when ``dst`` lives on the same process, else through
        ``mpi4py``'s nonblocking ``isend`` (the loopback world provides the
        same surface).  Non-owning processes get a no-op request, so SPMD
        call sites can post unconditionally.  Statistics are recorded by
        the matching ``irecv`` wait on the receiving process.
        """
        check_rank(self.n_ranks, src)
        check_rank(self.n_ranks, dst)
        if not self.owns(src):
            return self._noop_request("isend", category)
        perf_count("overlap.requests")
        owner = self.owner_of(dst)
        if owner == self.world_rank:
            self._p2p_mail.setdefault((src, dst), []).append(payload)
            return CommRequest("isend", category, lambda: None)
        mpi_req = self._comm.isend(payload, dest=owner, tag=self._p2p_tag(src, dst))
        return CommRequest("isend", category, mpi_req.wait)

    def irecv(
        self,
        src: int,
        dst: int,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> CommRequest:
        """Post a nonblocking receive at ``dst`` for a message from ``src``.

        The matching ``isend`` must be posted (on its owning process)
        before this request is waited on — the overlapped schedules
        guarantee that by posting whole rounds of sends before any wait.
        Accounting mirrors :class:`SimMPI`: the receive records the bytes,
        and a message unless ``src == dst``.
        """
        check_rank(self.n_ranks, src)
        check_rank(self.n_ranks, dst)
        if not self.owns(dst):
            return self._noop_request("irecv", category)
        perf_count("overlap.requests")
        owner = self.owner_of(src)

        def complete() -> Any:
            start = time.perf_counter()
            if owner == self.world_rank:
                queue = self._p2p_mail.get((src, dst))
                if not queue:
                    raise RuntimeError(
                        f"irecv({src} -> {dst}) waited with no matching "
                        "isend posted; post the send before waiting"
                    )
                payload = queue.pop(0)
            else:
                payload = self._comm.recv(
                    source=owner, tag=self._p2p_tag(src, dst)
                )
                self.interprocess_bytes += payload_nbytes(payload)
                self.interprocess_messages += 1
            record_comm_event(
                self.stats,
                category,
                operations=1,
                messages=0 if src == dst else 1,
                nbytes=payload_nbytes(payload),
                modeled_seconds=time.perf_counter() - start,
            )
            return payload

        return CommRequest("irecv", category, complete)

    def ibcast(
        self,
        root: int,
        payload: Any,
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.BCAST,
    ) -> CommRequest:
        """Post a nonblocking broadcast; completes eagerly at the post.

        MPI permits a nonblocking collective to complete anywhere between
        post and wait; this backend runs the underlying (deadlock-free,
        SPMD-ordered) collective at post time and hands the result to the
        wait, so the single-rank emulator and real multi-process worlds
        behave identically.  Volume accounting is exactly :meth:`bcast`'s.
        """
        perf_count("overlap.requests")
        result = self.bcast(root, payload, group=group, category=category)
        return CommRequest("ibcast", category, lambda: result)

    def iallgather(
        self,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLGATHER,
    ) -> CommRequest:
        """Post a nonblocking allgather; completes eagerly at the post.

        Same eager-completion semantics (and accounting) as :meth:`ibcast`.
        """
        perf_count("overlap.requests")
        result = self.allgather(payloads, group=group, category=category)
        return CommRequest("iallgather", category, lambda: result)

    def wait(self, request: CommRequest) -> Any:
        """Complete one nonblocking request and return its result."""
        return request.wait()

    def waitall(self, requests: Sequence[CommRequest]) -> list[Any]:
        """Complete requests in posting order; returns their results."""
        return [request.wait() for request in requests]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        kind = "mpi4py" if self.is_real_mpi else "emulated"
        return (
            f"MPIBackend(p={self.n_ranks}, world={self.world_size}, "
            f"backend={kind})"
        )
