"""Pluggable logical-rank→process placement strategies.

The multi-process backends host ``n_ranks`` *logical* ranks on
``world_size`` real processes.  Which process hosts which rank is a purely
*physical* decision — results are byte-identical under any placement,
because all payload routing goes through ``owner_of`` and the logical
communication accounting is placement-invariant by construction (the
differential suite sweeps partitioners the way it sweeps layouts and world
sizes).  What placement does change is *performance*: per-process memory,
local compute, and how much of the logical traffic crosses a process
boundary.

A :class:`Partitioner` owns the ``logical rank -> process`` map.  Four
strategies are registered:

``round_robin``
    ``r % n_processes`` — the historical default and the oracle the
    differential suite compares everything against.

``block_cyclic``
    ``(r // block_size) % n_processes`` — contiguous runs of ranks dealt
    cyclically, the classic ScaLAPACK compromise between contiguity and
    balance.

``nnz_aware``
    Greedy longest-processing-time bin-packing on per-rank nnz weights
    (from the initial matrix or a scenario prefix): ranks are sorted by
    descending weight and each is assigned to the least-loaded process.
    With uniform weights this degenerates to ``round_robin`` exactly.

``locality_aware``
    Grid-binned (in the spirit of GriT-DBSCAN's grid partitioning):
    the ``q×q`` :class:`~repro.runtime.grid.ProcessGrid` is cut into
    ``pr × pc`` contiguous bands of rows and columns, one band per
    process, so grid row/column neighbours — the SUMMA broadcast and
    two-phase redistribution peers — land on the same process and their
    traffic never crosses a process boundary.

Selection follows the usual environment pattern: ``REPRO_PARTITIONER``
names the strategy for scenario replay (``replay(partitioner=...)``
overrides it), and ``REPRO_REPARTITION`` arms the online repartitioning
hook (a max/mean per-process nnz imbalance threshold ``> 1``; unset or
``off`` disables it) — see ``docs/backends.md``.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Callable, Mapping, Sequence

__all__ = [
    "PARTITIONER_ENV_VAR",
    "REPARTITION_ENV_VAR",
    "DEFAULT_PARTITIONER",
    "Partitioner",
    "RoundRobinPartitioner",
    "BlockCyclicPartitioner",
    "NnzAwarePartitioner",
    "LocalityAwarePartitioner",
    "available_partitioners",
    "make_partitioner",
    "register_partitioner",
    "resolve_partitioner_name",
    "repartition_threshold",
    "verify_placement",
]

#: Environment variable naming the placement strategy for scenario replay.
PARTITIONER_ENV_VAR = "REPRO_PARTITIONER"

#: Environment variable arming the online repartitioning hook.
REPARTITION_ENV_VAR = "REPRO_REPARTITION"

#: Strategy used when neither the env var nor an argument names one.
DEFAULT_PARTITIONER = "round_robin"


def _active_processes(n_ranks: int, n_processes: int) -> int:
    """Size of the placement domain: surplus processes stay idle.

    An oversubscribed world (``mpiexec -n 6`` over four logical ranks)
    must idle its surplus processes — exactly what the historical
    ``r % world_size`` placement did — so every strategy places ranks
    onto the first ``min(n_processes, n_ranks)`` processes only.
    """
    if n_ranks < 1:
        raise ValueError("placement needs at least one logical rank")
    if n_processes < 1:
        raise ValueError("placement needs at least one process")
    return min(n_processes, n_ranks)


def verify_placement(
    placement: Mapping[int, int], n_ranks: int, n_processes: int
) -> None:
    """Validate a ``logical rank -> process`` map (nengo_mpi style).

    Every logical rank must be mapped exactly once, and every owner must
    lie inside the active-process domain — in particular, no rank may be
    placed on a surplus (idle) process of an oversubscribed world.
    """
    active = _active_processes(n_ranks, n_processes)
    if sorted(placement) != list(range(n_ranks)):
        raise ValueError(
            f"placement must map every logical rank 0..{n_ranks - 1} "
            f"exactly once, got keys {sorted(placement)}"
        )
    bad = {r: p for r, p in placement.items() if not 0 <= p < active}
    if bad:
        raise ValueError(
            f"placement targets outside the active process domain "
            f"[0, {active}): {bad}"
        )


class Partitioner:
    """Base class: a strategy producing the logical-rank→process map."""

    #: registry key (subclasses override)
    name = "abstract"
    #: whether :meth:`placement` makes use of per-rank nnz weights
    uses_weights = False

    def placement(
        self,
        n_ranks: int,
        n_processes: int,
        *,
        grid=None,
        weights: Mapping[int, float] | Sequence[float] | None = None,
    ) -> dict[int, int]:
        """Return the ``logical rank -> process`` map.

        ``grid`` is the :class:`~repro.runtime.grid.ProcessGrid` the ranks
        form (locality-aware strategies bin by grid coordinates); ``weights``
        are per-rank nnz estimates (load-aware strategies bin-pack on them).
        Both are optional — every strategy must produce a valid placement
        without them.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class RoundRobinPartitioner(Partitioner):
    """``r % n_processes`` — the historical default placement."""

    name = "round_robin"

    def placement(self, n_ranks, n_processes, *, grid=None, weights=None):
        """Deal ranks cyclically over the active processes."""
        active = _active_processes(n_ranks, n_processes)
        return {r: r % active for r in range(n_ranks)}


class BlockCyclicPartitioner(Partitioner):
    """Contiguous runs of ``block_size`` ranks, dealt cyclically."""

    name = "block_cyclic"

    def __init__(self, block_size: int = 2) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = int(block_size)

    def placement(self, n_ranks, n_processes, *, grid=None, weights=None):
        """``(r // block_size) % n_processes`` over the active processes."""
        active = _active_processes(n_ranks, n_processes)
        return {r: (r // self.block_size) % active for r in range(n_ranks)}


class NnzAwarePartitioner(Partitioner):
    """Greedy LPT bin-packing on per-rank nnz weights."""

    name = "nnz_aware"
    uses_weights = True

    def placement(self, n_ranks, n_processes, *, grid=None, weights=None):
        """Assign heaviest-first, each rank to the least-loaded process.

        Ties (equal loads, equal weights) resolve to the lowest index, so
        uniform weights reproduce ``round_robin`` exactly and the result is
        deterministic.  Missing or degenerate (all non-positive) weights
        fall back to uniform.
        """
        active = _active_processes(n_ranks, n_processes)
        if weights is None:
            resolved = [1.0] * n_ranks
        elif isinstance(weights, Mapping):
            resolved = [float(weights.get(r, 0.0)) for r in range(n_ranks)]
        else:
            if len(weights) != n_ranks:
                raise ValueError(
                    f"weights must cover all {n_ranks} ranks, got {len(weights)}"
                )
            resolved = [float(w) for w in weights]
        if all(w <= 0.0 for w in resolved):
            resolved = [1.0] * n_ranks
        order = sorted(range(n_ranks), key=lambda r: (-resolved[r], r))
        loads = [0.0] * active
        out: dict[int, int] = {}
        for rank in order:
            proc = min(range(active), key=lambda q: (loads[q], q))
            out[rank] = proc
            loads[proc] += resolved[rank]
        return out


def _even_cuts(n: int, parts: int) -> list[int]:
    """Offsets of an as-even-as-possible split of ``n`` items into ``parts``."""
    base, rem = divmod(n, parts)
    offsets = [0]
    for index in range(parts):
        offsets.append(offsets[-1] + base + (1 if index < rem else 0))
    return offsets


class LocalityAwarePartitioner(Partitioner):
    """Grid-binned placement: contiguous row/column bands per process."""

    name = "locality_aware"

    def placement(self, n_ranks, n_processes, *, grid=None, weights=None):
        """Cut the ``q×q`` grid into ``pr × pc`` bands, one per process.

        ``n_processes`` is factored as ``pr × pc`` with ``pr <= q`` and
        ``pc <= q``, preferring the factorisation closest to square and
        breaking ties towards ``pr <= pc`` (fewer row bands keep grid
        *columns* — the phase-1 redistribution groups — intra-process).
        When no factorisation fits, the grid ranks fall back to contiguous
        row-major chunks.  Surplus logical ranks beyond the ``q²`` grid
        (``ProcessGrid.fit`` idles them) are dealt round-robin.
        """
        active = _active_processes(n_ranks, n_processes)
        if grid is None:
            from repro.runtime.grid import ProcessGrid
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                grid = ProcessGrid.fit(n_ranks)
        q = grid.q
        out: dict[int, int] = {}
        factors = self._factor(active, q)
        if factors is None:
            # no pr×pc fits the grid: contiguous row-major chunks
            cuts = _even_cuts(q * q, active)
            for rank in range(min(n_ranks, q * q)):
                out[rank] = bisect_right(cuts, rank) - 1
        else:
            pr, pc = factors
            row_cuts = _even_cuts(q, pr)
            col_cuts = _even_cuts(q, pc)
            for rank in range(min(n_ranks, q * q)):
                row, col = divmod(rank, q)
                band_row = bisect_right(row_cuts, row) - 1
                band_col = bisect_right(col_cuts, col) - 1
                out[rank] = band_row * pc + band_col
        for rank in range(q * q, n_ranks):
            out[rank] = rank % active
        return out

    @staticmethod
    def _factor(active: int, q: int) -> tuple[int, int] | None:
        """The ``pr × pc = active`` factorisation fitting a ``q×q`` grid."""
        best: tuple[tuple[int, int], tuple[int, int]] | None = None
        for pr in range(1, min(q, active) + 1):
            if active % pr:
                continue
            pc = active // pr
            if pc > q:
                continue
            key = (abs(pr - pc), 0 if pr <= pc else 1)
            if best is None or key < best[0]:
                best = (key, (pr, pc))
        return best[1] if best else None


# ----------------------------------------------------------------------
# registry / resolution
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[], Partitioner]] = {}


def register_partitioner(name: str, factory: Callable[[], Partitioner]) -> None:
    """Register a partitioner factory under ``name``."""
    _REGISTRY[name] = factory


register_partitioner("round_robin", RoundRobinPartitioner)
register_partitioner("block_cyclic", BlockCyclicPartitioner)
register_partitioner("nnz_aware", NnzAwarePartitioner)
register_partitioner("locality_aware", LocalityAwarePartitioner)


def available_partitioners() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_partitioner_name(name: str | None = None) -> str:
    """Resolve a strategy name: argument → ``REPRO_PARTITIONER`` → default.

    Raises ``ValueError`` on unknown names (from either source) so typos
    in the environment fail loudly instead of silently running the
    default placement.
    """
    if name is None:
        name = os.environ.get(PARTITIONER_ENV_VAR) or DEFAULT_PARTITIONER
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown partitioner {name!r} "
            f"(available: {', '.join(available_partitioners())})"
        )
    return name


def make_partitioner(name: str | Partitioner | None = None) -> Partitioner:
    """Instantiate a partitioner by name (env-resolved when ``None``)."""
    if isinstance(name, Partitioner):
        return name
    return _REGISTRY[resolve_partitioner_name(name)]()


def repartition_threshold() -> float | None:
    """The armed ``REPRO_REPARTITION`` imbalance threshold, or ``None``.

    The value is the tolerated max/mean per-process nnz ratio — a float
    strictly greater than 1 (``1.5`` repartitions once one process holds
    50% more nnz than the average).  Unset, empty, ``off`` or ``0``
    disable the hook; anything else unparseable raises.
    """
    raw = os.environ.get(REPARTITION_ENV_VAR, "").strip().lower()
    if raw in ("", "off", "0", "none", "false"):
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{REPARTITION_ENV_VAR} must be a ratio > 1 or 'off', got {raw!r}"
        ) from None
    if value <= 1.0:
        raise ValueError(
            f"{REPARTITION_ENV_VAR} must be strictly greater than 1 "
            f"(a max/mean imbalance ratio), got {value}"
        )
    return value
