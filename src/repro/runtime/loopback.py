"""In-process multi-process worlds for the MPI backend.

:class:`LoopbackWorld` emulates an ``mpiexec -n p`` launch inside one
Python process: each world process runs on its own thread, and
:class:`LoopbackComm` gives every thread an object speaking the (lowercase,
pickle-based) ``mpi4py.MPI.COMM_WORLD`` surface that
:class:`~repro.runtime.mpi_backend.MPIBackend` uses.  Collectives
rendezvous on a :class:`threading.Barrier`, so the participating threads
advance in lockstep exactly like a bulk-synchronous MPI program.

Every payload crossing the loopback "wire" is pickled and unpickled, for
two reasons: it isolates the processes from each other (no shared mutable
matrices, just like real MPI), and it proves that every payload the
orchestration layer communicates survives real mpi4py serialisation — the
multi-process test suite catches unpicklable payload types without an MPI
installation.

:func:`run_spmd` is the launcher: it runs one SPMD program per world
process and returns the per-process results, re-raising the first worker
exception (after releasing the other threads) so test failures surface
normally.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Callable, Sequence

__all__ = ["LoopbackComm", "LoopbackWorld", "run_spmd"]


def _roundtrip(obj: Any) -> Any:
    """Pickle-roundtrip ``obj`` — the loopback stand-in for the MPI wire."""
    return pickle.loads(pickle.dumps(obj))


class LoopbackWorld:
    """A world of ``size`` thread-backed emulated MPI processes."""

    #: seconds a point-to-point receive waits for its matching send before
    #: declaring the world wedged (a deadlocked schedule, not slowness)
    P2P_TIMEOUT = 60.0

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("world needs at least one process")
        self.size = int(size)
        self._barrier = threading.Barrier(self.size)
        self._slots: list[Any] = [None] * self.size
        #: (src_proc, dst_proc, tag) -> FIFO of pickled payloads — the
        #: thread mailboxes behind the nonblocking point-to-point surface
        self._mail: dict[tuple[int, int, int], list[bytes]] = {}
        self._mail_cond = threading.Condition()

    # ------------------------------------------------------------------
    def comm(self, world_rank: int) -> "LoopbackComm":
        """The communicator endpoint of world process ``world_rank``."""
        if not (0 <= world_rank < self.size):
            raise IndexError(f"world rank {world_rank} outside world of {self.size}")
        return LoopbackComm(self, world_rank)

    def exchange_all(self, world_rank: int, value: Any) -> list[Any]:
        """Deposit ``value``, wait for everyone, return all deposits.

        The second barrier keeps the slots stable until every thread has
        taken its snapshot, so back-to-back collectives cannot race.
        """
        self._slots[world_rank] = value
        self._barrier.wait()
        snapshot = list(self._slots)
        self._barrier.wait()
        return snapshot

    def post_message(self, src: int, dst: int, tag: int, payload: Any) -> None:
        """Deposit a pickled point-to-point message into ``dst``'s mailbox.

        Messages on one ``(src, dst, tag)`` channel are matched in FIFO
        order, mirroring MPI's per-source/tag ordering guarantee.
        """
        wire = pickle.dumps(payload)
        with self._mail_cond:
            self._mail.setdefault((src, dst, tag), []).append(wire)
            self._mail_cond.notify_all()

    def fetch_message(self, src: int, dst: int, tag: int) -> Any:
        """Block until a matching message is available; unpickle and return it."""
        key = (src, dst, tag)
        with self._mail_cond:
            ok = self._mail_cond.wait_for(
                lambda: self._mail.get(key), timeout=self.P2P_TIMEOUT
            )
            if not ok:
                raise TimeoutError(
                    f"loopback recv (proc {src} -> {dst}, tag {tag}) saw no "
                    "matching send — the schedule must post sends before "
                    "waiting on receives"
                )
            wire = self._mail[key].pop(0)
        return pickle.loads(wire)

    def abort(self) -> None:
        """Break the barrier so peers of a crashed thread do not hang."""
        self._barrier.abort()
        with self._mail_cond:
            self._mail_cond.notify_all()


class LoopbackComm:
    """One process's endpoint into a :class:`LoopbackWorld`.

    Implements the communicator methods :class:`MPIBackend` calls, with
    mpi4py's lowercase-method semantics (``gather`` returns ``None`` on
    non-root processes, ``alltoall`` takes one send item per destination).
    """

    def __init__(self, world: LoopbackWorld, world_rank: int) -> None:
        self._world = world
        self._rank = int(world_rank)

    # -- identity ------------------------------------------------------
    def Get_rank(self) -> int:
        """World rank of this process."""
        return self._rank

    def Get_size(self) -> int:
        """Number of processes in the world."""
        return self._world.size

    # -- synchronisation ----------------------------------------------
    def barrier(self) -> None:
        """Block until every world process reaches the barrier."""
        self._world.exchange_all(self._rank, None)

    Barrier = barrier

    # -- collectives ---------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``root``'s object to every process."""
        values = self._world.exchange_all(self._rank, obj if self._rank == root else None)
        return _roundtrip(values[root])

    def gather(self, sendobj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per process; the list lands on ``root`` only."""
        values = self._world.exchange_all(self._rank, sendobj)
        if self._rank != root:
            return None
        return [_roundtrip(v) for v in values]

    def allgather(self, sendobj: Any) -> list[Any]:
        """Gather one object per process onto every process."""
        values = self._world.exchange_all(self._rank, sendobj)
        return [_roundtrip(v) for v in values]

    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``root``'s per-process sequence; returns this rank's share."""
        values = self._world.exchange_all(self._rank, sendobj if self._rank == root else None)
        buckets = values[root]
        if buckets is None or len(buckets) != self._world.size:
            raise ValueError("scatter payload must have one entry per process")
        return _roundtrip(buckets[self._rank])

    def alltoall(self, sendobj: Sequence[Any]) -> list[Any]:
        """Personalised exchange: item ``i`` of each sequence goes to rank ``i``."""
        if len(sendobj) != self._world.size:
            raise ValueError("alltoall payload must have one entry per process")
        values = self._world.exchange_all(self._rank, list(sendobj))
        return [_roundtrip(values[src][self._rank]) for src in range(self._world.size)]

    # -- nonblocking point-to-point ------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0) -> "_LoopbackSendRequest":
        """Nonblocking send: deposit into the destination's thread mailbox.

        The payload is pickled immediately (buffer reusable right away);
        the returned request's ``wait`` is therefore a no-op, matching how
        :class:`~repro.runtime.mpi_backend.MPIBackend` uses mpi4py's
        ``isend``.
        """
        self._world.post_message(self._rank, int(dest), int(tag), obj)
        return _LoopbackSendRequest()

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive of the matching mailbox message (FIFO per channel)."""
        return self._world.fetch_message(int(source), self._rank, int(tag))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LoopbackComm(rank={self._rank}, size={self._world.size})"


class _LoopbackSendRequest:
    """Completed-at-post send request (the payload was pickled at isend)."""

    @staticmethod
    def wait() -> None:
        """No-op: the loopback send buffer is free as soon as it is posted."""
        return None


def run_spmd(
    world_size: int,
    program: Callable[[LoopbackComm, int], Any],
    *,
    timeout: float = 120.0,
) -> list[Any]:
    """Run ``program(comm, world_rank)`` once per world process, on threads.

    Returns the per-process return values (index = world rank).  If any
    thread raises, the world barrier is aborted (so the surviving threads
    unblock with :class:`threading.BrokenBarrierError`) and the first
    original exception is re-raised in the caller.
    """
    world = LoopbackWorld(world_size)
    results: list[Any] = [None] * world_size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def _worker(world_rank: int) -> None:
        try:
            results[world_rank] = program(world.comm(world_rank), world_rank)
        except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
            with lock:
                errors.append((world_rank, exc))
            world.abort()

    threads = [
        threading.Thread(target=_worker, args=(r,), name=f"loopback-{r}")
        for r in range(world_size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    if any(t.is_alive() for t in threads):
        world.abort()
        raise TimeoutError("loopback SPMD program did not finish in time")
    if errors:
        errors.sort(key=lambda item: item[0])
        rank, exc = next(
            ((r, e) for r, e in errors if not isinstance(e, threading.BrokenBarrierError)),
            errors[0],
        )
        raise RuntimeError(f"loopback world process {rank} failed") from exc
    return results
