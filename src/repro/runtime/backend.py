"""Backend-agnostic communicator protocol, registry and factory.

Every distributed algorithm in this repository is written in bulk-synchronous
"global orchestration" style against a small communicator surface: local
kernels are dispatched per rank via ``run_local`` / ``map_local``, payloads
move between ranks through ``exchange`` and the MPI-style collectives, and
per-category accounting lands in a :class:`~repro.runtime.stats.CommStats`.
:class:`Communicator` captures that surface as a structural
:class:`typing.Protocol`, so algorithms depend on the *contract* rather than
on a concrete backend class.

Two backends ship with the repository:

* ``"sim"`` — :class:`repro.runtime.simmpi.SimMPI`: the single-process
  simulator with per-rank modelled clocks and a Hockney ``α + β·bytes`` cost
  model.  This is the default and what the paper-reproduction figures use.
* ``"mpi"`` — :class:`repro.runtime.mpi_backend.MPIBackend`: executes the
  same orchestration programs on top of ``mpi4py``, degrading to a built-in
  single-rank emulator when mpi4py is not installed (so the code path can be
  exercised on any machine).

Backends live in a registry keyed by name; external code can plug in its own
implementation with :func:`register_backend`.  :func:`make_communicator`
resolves the backend from an explicit argument, else from the
``REPRO_BACKEND`` environment variable, else the default ``"sim"``.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Callable,
    Iterable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.runtime.config import MachineModel
from repro.runtime.stats import CommStats, StatCategory

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "CommRequest",
    "Communicator",
    "available_backends",
    "check_rank",
    "make_communicator",
    "normalize_group",
    "register_backend",
    "resolve_backend_name",
]

#: Environment variable consulted by :func:`make_communicator` when no
#: explicit backend name is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Backend used when neither an argument nor the environment selects one.
DEFAULT_BACKEND = "sim"


# ----------------------------------------------------------------------
# shared rank/group validation helpers (used by every backend)
# ----------------------------------------------------------------------
def check_rank(n_ranks: int, rank: int) -> None:
    """Raise :class:`IndexError` unless ``0 <= rank < n_ranks``."""
    if not (0 <= rank < n_ranks):
        raise IndexError(f"rank {rank} outside communicator of size {n_ranks}")


def normalize_group(n_ranks: int, group: Sequence[int] | None) -> list[int]:
    """Validate a communication group, defaulting to all ranks.

    Duplicates are dropped (first occurrence wins), order is preserved, and
    an empty group raises :class:`ValueError` — the semantics every backend
    must share so that group-collective call sites behave identically.
    """
    if group is None:
        return list(range(n_ranks))
    ranks = list(dict.fromkeys(int(r) for r in group))
    if not ranks:
        raise ValueError("communication group must not be empty")
    for r in ranks:
        check_rank(n_ranks, r)
    return ranks


# ----------------------------------------------------------------------
# nonblocking request handle (shared by every backend)
# ----------------------------------------------------------------------
class CommRequest:
    """Handle for an in-flight nonblocking communication operation.

    Returned by the nonblocking primitives (``isend`` / ``irecv`` /
    ``ibcast`` / ``iallgather``).  A request is *completed* exactly once —
    through :meth:`Communicator.wait`, :meth:`Communicator.waitall` or
    :meth:`wait` directly — and completion is when the backend resolves the
    operation's result and records its statistics.  ``waitall`` completes
    requests in posting order, so results and accounting stay deterministic
    across backends and world sizes (a correctness requirement of the
    differential suite, not an optimisation detail).
    """

    __slots__ = ("op", "category", "_complete", "_done", "_result")

    def __init__(
        self, op: str, category: str, complete: Callable[[], Any]
    ) -> None:
        """Wrap backend completion callback ``complete`` for operation ``op``."""
        self.op = op
        self.category = category
        self._complete: Callable[[], Any] | None = complete
        self._done = False
        self._result: Any = None

    @property
    def done(self) -> bool:
        """Whether the request has already been completed by a wait."""
        return self._done

    def wait(self) -> Any:
        """Complete the operation (idempotent) and return its result.

        The first call runs the backend's completion step (delivering the
        payload, advancing modelled clocks, recording statistics); further
        calls return the cached result.
        """
        if not self._done:
            assert self._complete is not None
            result = self._complete()
            self._complete = None  # free captured payloads promptly
            self._result = result
            self._done = True
        return self._result


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------
@runtime_checkable
class Communicator(Protocol):
    """Structural protocol of the orchestration-style communicator.

    Implementations execute bulk-synchronous SPMD programs over
    ``n_ranks`` logical ranks.  The orchestration program calls
    ``run_local`` to attribute local kernels to a rank and the collectives
    to move per-rank payload mappings; how ranks map onto real processes
    (all-in-one simulation, mpi4py, …) is the backend's business.

    **Ownership and partial mappings.**  Logical ranks are partitioned over
    the participating processes (one process owns everything on the
    simulator; a pluggable :mod:`~repro.runtime.partitioner` strategy —
    round-robin by default — on a multi-process backend).  All per-rank state
    mappings (``rank -> block``, ``rank -> payload``) are *partial*: a
    process materialises entries only for the ranks it owns, and every
    collective accepts such partial contribution mappings, merging them
    across processes.  Orchestration code must therefore iterate
    ``owned_ranks()`` instead of ``range(n_ranks)`` whenever it touches
    per-rank data, and must keep any *control-flow decision* (skipping a
    broadcast, gating a reduction) globally deterministic — either derived
    from replicated data or agreed through the ``host_*`` control plane.

    **Control plane.**  ``host_merge`` / ``host_fold`` exchange bookkeeping
    values (block sizes, emptiness flags, assembled test results) between
    processes *without* touching ``stats``.  They model the metadata
    headers a real implementation pays for inside its collectives; keeping
    them uncharged makes byte/message accounting identical across world
    sizes, which the differential harness asserts.
    """

    n_ranks: int
    machine: MachineModel
    stats: CommStats
    track_time: bool

    # -- clock / bookkeeping ------------------------------------------
    @property
    def p(self) -> int:
        """Number of logical ranks (alias of ``n_ranks``)."""
        ...

    # -- rank ownership / control plane -------------------------------
    def owner_of(self, rank: int) -> int:
        """Index of the process hosting logical ``rank`` (0 on the simulator)."""
        ...

    def owns(self, rank: int) -> bool:
        """``True`` when this process hosts logical ``rank``."""
        ...

    def owned_ranks(self, group: Sequence[int] | None = None) -> list[int]:
        """The ranks of ``group`` (default: all) hosted by this process."""
        ...

    def host_merge(self, mapping: Mapping[int, Any]) -> dict[int, Any]:
        """Union per-rank partial mappings across processes (uncharged).

        Every process passes the entries for its owned ranks and receives
        the full ``rank -> value`` mapping.  Control-plane only: no bytes
        or messages are recorded.
        """
        ...

    def host_fold(self, value: Any, combine: Callable[[Any, Any], Any]) -> Any:
        """Fold one value per process into a global value (uncharged).

        The fold order is ascending process index, so ``combine`` should be
        associative and commutative.  Returns the same result on every
        process.
        """
        ...

    def elapsed(self) -> float:
        """Parallel time so far (modelled or wall-clock, backend-defined)."""
        ...

    def reset_clock(self) -> None:
        """Reset the clock(s) behind :meth:`elapsed` (statistics survive)."""
        ...

    def reset(self) -> None:
        """Reset clocks *and* accumulated statistics."""
        ...

    def barrier(self, group: Sequence[int] | None = None) -> None:
        """Synchronise the ranks of ``group`` (default: all ranks)."""
        ...

    def timer(self) -> Any:
        """Context manager yielding an object with a ``seconds`` attribute."""
        ...

    # -- local computation --------------------------------------------
    def run_local(
        self,
        rank: int,
        fn: Callable[..., Any],
        *args: Any,
        category: str = StatCategory.LOCAL_COMPUTE,
        **kwargs: Any,
    ) -> Any:
        """Execute ``fn(*args, **kwargs)`` as local work of ``rank``.

        The kernel's cost is charged to ``rank`` under ``category``;
        returns the kernel's result (``None`` on non-owning processes of a
        multi-process backend).
        """
        ...

    def map_local(
        self,
        fn: Callable[..., Any],
        per_rank_args: Sequence[tuple] | Mapping[int, tuple],
        *,
        category: str = StatCategory.LOCAL_COMPUTE,
        group: Sequence[int] | None = None,
    ) -> dict[int, Any]:
        """Run ``fn`` once per rank with rank-specific argument tuples.

        ``per_rank_args`` is a mapping ``rank -> args`` or a sequence
        aligned with ``group``; returns ``rank -> result`` for the ranks
        that executed locally.
        """
        ...

    def charge_local(
        self,
        rank: int,
        measured_seconds: float,
        *,
        category: str = StatCategory.LOCAL_COMPUTE,
    ) -> None:
        """Charge already-measured local seconds to ``rank`` under ``category``."""
        ...

    # -- point-to-point -----------------------------------------------
    def exchange(
        self,
        messages: Iterable[tuple[int, int, Any]],
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> dict[int, list[tuple[int, Any]]]:
        """Deliver ``(src, dst, payload)`` messages posted simultaneously.

        Returns ``dst -> [(src, payload), ...]`` in posting order.
        """
        ...

    def sendrecv(
        self,
        rank_a: int,
        rank_b: int,
        payload_ab: Any,
        payload_ba: Any,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> tuple[Any, Any]:
        """Pairwise exchange; returns ``(received_by_a, received_by_b)``."""
        ...

    # -- collectives --------------------------------------------------
    def alltoallv(
        self,
        sendbufs: Mapping[int, Mapping[int, Any]],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLTOALL,
    ) -> dict[int, dict[int, Any]]:
        """Personalised all-to-all of ``sendbufs[src][dst]`` within ``group``.

        Returns ``recvbufs[dst][src]``.
        """
        ...

    def bcast(
        self,
        root: int,
        payload: Any,
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.BCAST,
    ) -> dict[int, Any]:
        """Broadcast ``payload`` from ``root``; returns ``rank -> payload``."""
        ...

    def gather(
        self,
        root: int,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.GATHER,
    ) -> dict[int, Any]:
        """Gather one payload per group member onto ``root`` as ``{src: payload}``."""
        ...

    def scatter(
        self,
        root: int,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.SCATTER,
    ) -> dict[int, Any]:
        """Scatter rank-specific payloads from ``root`` to the group."""
        ...

    def allgather(
        self,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLGATHER,
    ) -> dict[int, dict[int, Any]]:
        """All-gather: every rank receives every payload."""
        ...

    def reduce(
        self,
        root: int,
        payloads: Mapping[int, Any],
        combine: Callable[[Any, Any], Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.REDUCE,
        measure_combine: bool = True,
    ) -> Any:
        """Tree-reduce one payload per rank onto ``root`` with ``combine``."""
        ...

    def allreduce(
        self,
        payloads: Mapping[int, Any],
        combine: Callable[[Any, Any], Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLREDUCE,
    ) -> dict[int, Any]:
        """Reduce-then-broadcast allreduce; returns ``rank -> result``."""
        ...

    # -- nonblocking primitives ---------------------------------------
    def isend(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> CommRequest:
        """Post a nonblocking send of ``payload`` from ``src`` to ``dst``.

        Returns a :class:`CommRequest`; waiting on it means the send buffer
        is reusable (the matching delivery happens at the receiver's
        ``irecv`` wait).  The receiver side records the message statistics,
        so a matched pair counts once — with the same self-message
        convention as :meth:`exchange` (``src == dst`` counts bytes but no
        message).
        """
        ...

    def irecv(
        self,
        src: int,
        dst: int,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> CommRequest:
        """Post a nonblocking receive at ``dst`` for a message from ``src``.

        Waiting on the returned request delivers (and returns) the payload
        of the matching ``isend``; sends between the same ``(src, dst)``
        pair match in FIFO posting order.  The matching ``isend`` must have
        been posted before this request is waited on.
        """
        ...

    def ibcast(
        self,
        root: int,
        payload: Any,
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.BCAST,
    ) -> CommRequest:
        """Post a nonblocking broadcast of ``payload`` from ``root``.

        Waiting on the returned request yields the same ``rank -> payload``
        mapping as :meth:`bcast`, with identical message/byte accounting;
        only the *charged time* may differ, because the transfer is
        modelled as overlapping with whatever work runs between post and
        wait.
        """
        ...

    def iallgather(
        self,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLGATHER,
    ) -> CommRequest:
        """Post a nonblocking allgather of one payload per group member.

        Waiting yields the same result mapping as :meth:`allgather`, with
        identical volume accounting.
        """
        ...

    def wait(self, request: CommRequest) -> Any:
        """Complete one nonblocking request and return its result."""
        ...

    def waitall(self, requests: Sequence[CommRequest]) -> list[Any]:
        """Complete requests *in posting order*; returns their results.

        The deterministic completion order is what keeps floating-point
        accumulation and statistics byte-identical between the overlapped
        and the synchronous schedules.
        """
        ...


# ----------------------------------------------------------------------
# backend registry + factory
# ----------------------------------------------------------------------
_BACKEND_REGISTRY: dict[str, Callable[..., Communicator]] = {}


def register_backend(name: str, factory: Callable[..., Communicator]) -> None:
    """Register (or replace) a communicator backend under ``name``.

    ``factory`` is called as ``factory(n_ranks=..., machine=..., **kwargs)``
    and must return a :class:`Communicator` implementation.
    """
    if not name or not name.strip():
        raise ValueError("backend name must be a non-empty string")
    _BACKEND_REGISTRY[name.strip().lower()] = factory


def available_backends() -> list[str]:
    """Sorted names of all registered backends."""
    return sorted(_BACKEND_REGISTRY)


def resolve_backend_name(backend: str | None = None) -> str:
    """Resolve the effective backend name (argument → env var → default)."""
    if backend is None or not backend.strip():
        backend = (os.environ.get(BACKEND_ENV_VAR) or "").strip() or DEFAULT_BACKEND
    return backend.strip().lower()


def make_communicator(
    backend: str | None = None,
    *,
    n_ranks: int = 1,
    machine: MachineModel | None = None,
    **kwargs: Any,
) -> Communicator:
    """Create a communicator for ``n_ranks`` logical ranks.

    Parameters
    ----------
    backend:
        Registered backend name (``"sim"`` or ``"mpi"`` out of the box).
        When omitted, the ``REPRO_BACKEND`` environment variable is
        consulted, then the default ``"sim"``.
    n_ranks:
        Number of logical ranks the orchestration program addresses.
    machine:
        Optional :class:`MachineModel` (cost model for the simulator;
        carried as metadata by real backends).
    kwargs:
        Extra backend-specific options (e.g. ``track_time=False`` or the
        mpi backend's ``force_emulator=True``).
    """
    name = resolve_backend_name(backend)
    factory = _BACKEND_REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown communicator backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return factory(n_ranks=n_ranks, machine=machine, **kwargs)


def _sim_factory(
    n_ranks: int = 1, machine: MachineModel | None = None, **kwargs: Any
) -> Communicator:
    from repro.runtime.simmpi import SimMPI

    return SimMPI(n_ranks, machine, **kwargs)


def _mpi_factory(
    n_ranks: int = 1, machine: MachineModel | None = None, **kwargs: Any
) -> Communicator:
    from repro.runtime.mpi_backend import MPIBackend

    return MPIBackend(n_ranks, machine, **kwargs)


register_backend("sim", _sim_factory)
register_backend("mpi", _mpi_factory)
