"""The simulated MPI communicator.

:class:`SimMPI` executes bulk-synchronous SPMD algorithms for ``p``
simulated ranks inside a single Python process.  Algorithms are written in
"global orchestration" style: local kernels are applied rank-by-rank via
:meth:`SimMPI.run_local` / :meth:`SimMPI.map_local` (their wall-clock time
is measured and converted into modelled rank time), while communication
primitives move payloads between ranks and charge a Hockney ``α + β·bytes``
cost model.

Each rank has a *modelled clock*.  Local work advances only the executing
rank's clock; collectives synchronise the clocks of the participating group
(every member must have arrived before data can flow) and then advance them
by the per-rank communication cost.  ``elapsed()`` (the maximum clock)
therefore behaves like the wall-clock time of a real bulk-synchronous MPI
program, which is what the paper reports.

**Nonblocking operations and overlap charging.**  The ``isend`` / ``irecv``
/ ``ibcast`` / ``iallgather`` primitives split a transfer into a *post* and
a *wait*.  At post time the simulator computes the same per-rank cost the
blocking operation would charge and captures the group's synchronised start
time, but does **not** advance any clock; at wait time each participant's
clock advances to ``max(own clock, start + cost)``.  A rank that computes
between post and wait therefore pays ``max(compute, outstanding_comm)``
over the window instead of the sum — overlap is *charged by the model*, so
the benefit of a pipelined schedule is measurable (and regression-gatable)
without hardware.  Message/byte accounting is identical to the blocking
operations and recorded at wait; the exposed (non-hidden) fraction of the
cost is reported as the event's modelled seconds, and the
``overlap.hidden_seconds`` / ``overlap.exposed_seconds`` perf counters
accumulate the split.
"""

from __future__ import annotations

import math
import time
import warnings
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.perf.recorder import perf_count, record_comm_event
from repro.runtime.backend import CommRequest, check_rank, normalize_group
from repro.runtime.config import MachineModel
from repro.runtime.stats import CommStats, StatCategory

__all__ = ["SimMPI", "payload_nbytes"]

#: Payload types already reported by the unknown-type fallback warning
#: (keyed by the type object — distinct types may share a qualname).
_UNSIZED_PAYLOAD_TYPES: set[type] = set()


def payload_nbytes(obj: Any) -> int:
    """Estimate the number of bytes needed to transfer ``obj``.

    Supports NumPy arrays, Python scalars, ``None``, nested tuples / lists /
    dicts thereof, and any object exposing an ``nbytes`` attribute (all
    sparse matrix classes in :mod:`repro.sparse` do).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    nbytes_attr = getattr(obj, "nbytes", None)
    if nbytes_attr is not None and not isinstance(obj, (list, tuple, dict)):
        return int(nbytes_attr)
    if isinstance(obj, Mapping):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(item) for item in obj)
    # Fallback: unknown object; charge a fixed small overhead so it is not
    # free to communicate, and warn once per type — a flat 64 bytes for a
    # large payload would silently corrupt the communication cost model.
    if type(obj) not in _UNSIZED_PAYLOAD_TYPES:
        _UNSIZED_PAYLOAD_TYPES.add(type(obj))
        warnings.warn(
            f"payload_nbytes: unknown payload type {type(obj).__qualname__!r}; charging a "
            "flat 64 bytes — implement an 'nbytes' attribute for accurate "
            "communication costs",
            RuntimeWarning,
            stacklevel=2,
        )
    return 64


class SimMPI:
    """A simulated MPI communicator over ``n_ranks`` ranks."""

    def __init__(
        self,
        n_ranks: int,
        machine: MachineModel | None = None,
        *,
        track_time: bool = True,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("communicator needs at least one rank")
        self.n_ranks = int(n_ranks)
        self.machine = machine if machine is not None else MachineModel()
        self.stats = CommStats()
        self.track_time = track_time
        self._clock = np.zeros(self.n_ranks, dtype=np.float64)
        #: (src, dst) -> FIFO of (finish_time, payload, nbytes) posted by
        #: isend and not yet consumed by a matching irecv wait
        self._mailboxes: dict[tuple[int, int], list] = {}
        #: per-rank time at which the rank's send link becomes free again
        #: (consecutive isends from one rank serialise on its link)
        self._send_busy = np.zeros(self.n_ranks, dtype=np.float64)

    # ------------------------------------------------------------------
    # clock management
    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of simulated ranks."""
        return self.n_ranks

    # ------------------------------------------------------------------
    # rank ownership / control plane (trivial: one process owns all ranks)
    # ------------------------------------------------------------------
    def owner_of(self, rank: int) -> int:
        """Hosting process of ``rank`` — always process 0 on the simulator."""
        check_rank(self.n_ranks, rank)
        return 0

    def owns(self, rank: int) -> bool:
        """``True`` for every valid rank: the simulator hosts all of them."""
        check_rank(self.n_ranks, rank)
        return True

    def owned_ranks(self, group: Sequence[int] | None = None) -> list[int]:
        """All ranks of ``group`` (default: all ranks) — everything is local."""
        return normalize_group(self.n_ranks, group)

    def host_merge(self, mapping: Mapping[int, Any]) -> dict[int, Any]:
        """Union of partial per-rank mappings — the identity on one process."""
        return dict(mapping)

    def host_fold(self, value: Any, combine: Callable[[Any, Any], Any]) -> Any:
        """Fold per-process values — the identity on one process."""
        return value

    @property
    def clock(self) -> np.ndarray:
        """Per-rank modelled clocks (seconds); a view, do not mutate."""
        return self._clock

    def elapsed(self) -> float:
        """Modelled parallel time so far (maximum over rank clocks)."""
        return float(self._clock.max())

    def reset_clock(self) -> None:
        """Reset all rank clocks to zero (does not reset statistics)."""
        self._clock[:] = 0.0
        self._send_busy[:] = 0.0

    def reset(self) -> None:
        """Reset clocks *and* statistics (drops undelivered isend payloads)."""
        self.reset_clock()
        self._mailboxes.clear()
        self.stats.reset()

    def barrier(self, group: Sequence[int] | None = None) -> None:
        """Synchronise the clocks of ``group`` (default: all ranks)."""
        ranks = self._group(group)
        t = float(self._clock[ranks].max())
        self._clock[ranks] = t

    @contextmanager
    def timer(self):
        """Context manager measuring modelled parallel time of a region.

        Example
        -------
        >>> comm = SimMPI(4)
        >>> with comm.timer() as t:
        ...     comm.barrier()
        >>> t.seconds >= 0.0
        True
        """

        class _Timer:
            seconds = 0.0

        holder = _Timer()
        start = self.elapsed()
        yield holder
        holder.seconds = self.elapsed() - start

    # ------------------------------------------------------------------
    # local computation
    # ------------------------------------------------------------------
    def run_local(
        self,
        rank: int,
        fn: Callable[..., Any],
        *args: Any,
        category: str = StatCategory.LOCAL_COMPUTE,
        **kwargs: Any,
    ) -> Any:
        """Execute ``fn(*args, **kwargs)`` as local work of ``rank``.

        The wall-clock duration is measured, divided by the machine model's
        shared-memory speedup and added to ``rank``'s modelled clock under
        ``category``.
        """
        self._check_rank(rank)
        if not self.track_time:
            return fn(*args, **kwargs)
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        measured = time.perf_counter() - start
        modeled = self.machine.compute_time(measured)
        self._clock[rank] += modeled
        record_comm_event(
            self.stats,
            category,
            operations=1,
            modeled_seconds=modeled,
            measured_seconds=measured,
        )
        return result

    def map_local(
        self,
        fn: Callable[..., Any],
        per_rank_args: Sequence[tuple] | Mapping[int, tuple],
        *,
        category: str = StatCategory.LOCAL_COMPUTE,
        group: Sequence[int] | None = None,
    ) -> dict[int, Any]:
        """Run ``fn`` once per rank with rank-specific arguments.

        ``per_rank_args`` is either a mapping ``rank -> argument tuple`` or a
        sequence aligned with ``group`` (default: all ranks).  Returns a dict
        ``rank -> result``.
        """
        ranks = self._group(group)
        if isinstance(per_rank_args, Mapping):
            items = [(r, per_rank_args[r]) for r in ranks if r in per_rank_args]
        else:
            if len(per_rank_args) != len(ranks):
                raise ValueError(
                    "per_rank_args length does not match the group size"
                )
            items = list(zip(ranks, per_rank_args))
        results: dict[int, Any] = {}
        for rank, args in items:
            results[rank] = self.run_local(rank, fn, *args, category=category)
        return results

    def charge_local(
        self,
        rank: int,
        measured_seconds: float,
        *,
        category: str = StatCategory.LOCAL_COMPUTE,
    ) -> None:
        """Charge already-measured local time to a rank's clock."""
        self._check_rank(rank)
        modeled = self.machine.compute_time(measured_seconds)
        self._clock[rank] += modeled
        record_comm_event(
            self.stats,
            category,
            operations=1,
            modeled_seconds=modeled,
            measured_seconds=measured_seconds,
        )

    # ------------------------------------------------------------------
    # point-to-point communication
    # ------------------------------------------------------------------
    def exchange(
        self,
        messages: Iterable[tuple[int, int, Any]],
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> dict[int, list[tuple[int, Any]]]:
        """Deliver a set of point-to-point messages "simultaneously".

        ``messages`` is an iterable of ``(src, dst, payload)``.  All messages
        are considered posted at each sender's current clock; a receiver's
        clock advances to the latest arrival.  Returns a dict
        ``dst -> [(src, payload), ...]`` in posting order.

        This primitive implements the transpose send/receive round of
        Algorithms 1 and 2 ("send A*_{i,j} to process (j,i)").
        """
        msgs = list(messages)
        inbox: dict[int, list[tuple[int, Any]]] = {}
        arrival = dict(enumerate(self._clock))
        send_finish: dict[int, float] = {}
        total_bytes = 0
        n_msgs = 0
        start_max = 0.0
        for src, dst, payload in msgs:
            self._check_rank(src)
            self._check_rank(dst)
            nbytes = payload_nbytes(payload)
            total_bytes += nbytes
            cost = self.machine.message_cost(src, dst, nbytes)
            depart = float(self._clock[src])
            start_max = max(start_max, depart)
            send_finish[src] = max(send_finish.get(src, depart), depart + cost)
            arrival[dst] = max(arrival.get(dst, 0.0), depart + cost)
            inbox.setdefault(dst, []).append((src, payload))
            if src != dst:
                n_msgs += 1
        before = self._clock.copy()
        for rank, t in send_finish.items():
            self._clock[rank] = max(self._clock[rank], t)
        for rank, t in arrival.items():
            self._clock[rank] = max(self._clock[rank], t)
        modeled = float(self._clock.max() - before.max()) if msgs else 0.0
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=max(modeled, 0.0),
        )
        return inbox

    def sendrecv(
        self,
        rank_a: int,
        rank_b: int,
        payload_ab: Any,
        payload_ba: Any,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> tuple[Any, Any]:
        """Pairwise exchange: returns ``(received_by_a, received_by_b)``."""
        inbox = self.exchange(
            [(rank_a, rank_b, payload_ab), (rank_b, rank_a, payload_ba)],
            category=category,
        )
        recv_a = inbox.get(rank_a, [(rank_b, None)])[0][1]
        recv_b = inbox.get(rank_b, [(rank_a, None)])[0][1]
        return recv_a, recv_b

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def alltoallv(
        self,
        sendbufs: Mapping[int, Mapping[int, Any]],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLTOALL,
    ) -> dict[int, dict[int, Any]]:
        """Personalised all-to-all within ``group``.

        ``sendbufs[src][dst]`` is the payload rank ``src`` sends to rank
        ``dst`` (both global rank ids; ``dst`` must belong to the group).
        Returns ``recvbufs[dst][src]``.

        Cost model: the group synchronises, then each rank pays the sum of
        its outgoing message costs plus the sum of its incoming message
        costs (a linear-time personalised exchange, the standard model for
        ``MPI_Alltoallv`` with irregular payloads).
        """
        ranks = self._group(group)
        rank_set = set(ranks)
        for src in sendbufs:
            self._check_rank(src)
            if src not in rank_set:
                raise ValueError(f"sender rank {src} is not part of the group")
            for dst in sendbufs[src]:
                if dst not in rank_set:
                    raise ValueError(
                        f"destination rank {dst} is not part of the group"
                    )
        t0 = float(self._clock[ranks].max())
        send_cost = {r: 0.0 for r in ranks}
        recv_cost = {r: 0.0 for r in ranks}
        recvbufs: dict[int, dict[int, Any]] = {r: {} for r in ranks}
        total_bytes = 0
        n_msgs = 0
        for src in ranks:
            for dst, payload in sendbufs.get(src, {}).items():
                nbytes = payload_nbytes(payload)
                recvbufs[dst][src] = payload
                if src == dst:
                    continue
                cost = self.machine.message_cost(src, dst, nbytes)
                send_cost[src] += cost
                recv_cost[dst] += cost
                total_bytes += nbytes
                n_msgs += 1
        max_finish = t0
        for r in ranks:
            finish = t0 + max(send_cost[r], recv_cost[r])
            self._clock[r] = finish
            max_finish = max(max_finish, finish)
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=max_finish - t0,
        )
        return recvbufs

    def bcast(
        self,
        root: int,
        payload: Any,
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.BCAST,
    ) -> dict[int, Any]:
        """Broadcast ``payload`` from ``root`` to every rank in ``group``.

        Uses a binomial-tree cost: ``ceil(log2 g) * (α + β·bytes)``.
        Returns a dict ``rank -> payload`` (all entries reference the same
        object; distributed code must not mutate received broadcast data).
        """
        ranks = self._group(group)
        if root not in ranks:
            raise ValueError(f"broadcast root {root} is not part of the group")
        g = len(ranks)
        nbytes = payload_nbytes(payload)
        rounds = max(1, math.ceil(math.log2(g))) if g > 1 else 0
        cost = rounds * (self.machine.alpha + self.machine.beta * nbytes)
        t0 = float(self._clock[ranks].max())
        self._clock[ranks] = t0 + cost
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=max(0, g - 1),
            nbytes=nbytes * max(0, g - 1),
            modeled_seconds=cost,
        )
        return {r: payload for r in ranks}

    def gather(
        self,
        root: int,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.GATHER,
    ) -> dict[int, Any]:
        """Gather one payload per group member onto ``root``.

        Returns ``{src: payload}`` visible only at the root (the caller is
        the orchestrator, so the dict is simply returned).
        """
        ranks = self._group(group)
        if root not in ranks:
            raise ValueError(f"gather root {root} is not part of the group")
        t0 = float(self._clock[ranks].max())
        total_bytes = 0
        n_msgs = 0
        root_cost = 0.0
        for src in ranks:
            payload = payloads.get(src)
            nbytes = payload_nbytes(payload)
            if src != root:
                cost = self.machine.message_cost(src, root, nbytes)
                root_cost += cost
                self._clock[src] = max(self._clock[src], t0 + cost)
                total_bytes += nbytes
                n_msgs += 1
        self._clock[root] = t0 + root_cost
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=root_cost,
        )
        return {src: payloads.get(src) for src in ranks}

    def scatter(
        self,
        root: int,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.SCATTER,
    ) -> dict[int, Any]:
        """Scatter rank-specific payloads from ``root`` to the group."""
        ranks = self._group(group)
        if root not in ranks:
            raise ValueError(f"scatter root {root} is not part of the group")
        t0 = float(self._clock[ranks].max())
        total_bytes = 0
        n_msgs = 0
        root_cost = 0.0
        for dst in ranks:
            payload = payloads.get(dst)
            nbytes = payload_nbytes(payload)
            if dst != root:
                cost = self.machine.message_cost(root, dst, nbytes)
                root_cost += cost
                self._clock[dst] = max(self._clock[dst], t0 + cost)
                total_bytes += nbytes
                n_msgs += 1
        self._clock[root] = t0 + root_cost
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=root_cost,
        )
        return {dst: payloads.get(dst) for dst in ranks}

    def allgather(
        self,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLGATHER,
    ) -> dict[int, dict[int, Any]]:
        """All-gather: every rank receives every payload.

        Cost: ring model, ``(g-1)·α + β·(total bytes excluding own)``.
        """
        ranks = self._group(group)
        g = len(ranks)
        t0 = float(self._clock[ranks].max())
        sizes = {r: payload_nbytes(payloads.get(r)) for r in ranks}
        total = sum(sizes.values())
        per_rank_cost = {
            r: (g - 1) * self.machine.alpha + self.machine.beta * (total - sizes[r])
            for r in ranks
        }
        for r in ranks:
            self._clock[r] = t0 + per_rank_cost[r]
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=g * (g - 1),
            nbytes=total * max(0, g - 1),
            modeled_seconds=(max(per_rank_cost.values()) if ranks else 0.0),
        )
        gathered = {r: payloads.get(r) for r in ranks}
        return {r: dict(gathered) for r in ranks}

    def reduce(
        self,
        root: int,
        payloads: Mapping[int, Any],
        combine: Callable[[Any, Any], Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.REDUCE,
        measure_combine: bool = True,
    ) -> Any:
        """Tree reduction of one payload per rank onto ``root``.

        ``combine(a, b)`` must be associative.  The reduction is executed as
        an actual binomial tree so that intermediate payload sizes (which may
        grow for sparse data) are charged accurately; combine time is
        measured and charged to the combining rank.
        """
        ranks = list(self._group(group))
        if root not in ranks:
            raise ValueError(f"reduce root {root} is not part of the group")
        # Rotate so the root is position 0 of the tree.
        order = [root] + [r for r in ranks if r != root]
        values = {r: payloads.get(r) for r in order}
        t0 = float(self._clock[ranks].max())
        self._clock[ranks] = t0
        active = list(order)
        total_bytes = 0
        n_msgs = 0
        while len(active) > 1:
            next_active = []
            for idx in range(0, len(active), 2):
                if idx + 1 >= len(active):
                    next_active.append(active[idx])
                    continue
                dst, src = active[idx], active[idx + 1]
                payload = values[src]
                nbytes = payload_nbytes(payload)
                cost = self.machine.message_cost(src, dst, nbytes)
                arrive = max(self._clock[src], self._clock[dst]) + cost
                self._clock[src] = arrive
                self._clock[dst] = arrive
                total_bytes += nbytes
                n_msgs += 1
                if measure_combine:
                    start = time.perf_counter()
                    values[dst] = combine(values[dst], payload)
                    measured = time.perf_counter() - start
                    self._clock[dst] += self.machine.compute_time(measured)
                else:
                    values[dst] = combine(values[dst], payload)
                next_active.append(dst)
            active = next_active
        modeled = float(self._clock[ranks].max() - t0)
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=n_msgs,
            nbytes=total_bytes,
            modeled_seconds=modeled,
        )
        return values[root]

    def allreduce(
        self,
        payloads: Mapping[int, Any],
        combine: Callable[[Any, Any], Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLREDUCE,
    ) -> dict[int, Any]:
        """Reduce-then-broadcast allreduce; returns ``rank -> result``."""
        ranks = self._group(group)
        root = ranks[0]
        result = self.reduce(
            root, payloads, combine, group=ranks, category=category
        )
        return self.bcast(root, result, group=ranks, category=category)

    # ------------------------------------------------------------------
    # nonblocking primitives (overlap-charged)
    # ------------------------------------------------------------------
    def _overlap_finish(
        self,
        ranks: Sequence[int],
        start: float,
        costs: Mapping[int, float],
        *,
        category: str,
        messages: int,
        nbytes: int,
    ) -> None:
        """Advance group clocks at wait time and record the overlap split.

        Each participant advances to ``max(own clock, start + cost)`` — the
        transfer ran in the background since the post.  The exposed time is
        the growth of the group's frontier clock; the remainder of the full
        cost was hidden behind computation.
        """
        before_max = float(self._clock[list(ranks)].max())
        for r in ranks:
            self._clock[r] = max(self._clock[r], start + costs[r])
        after_max = float(self._clock[list(ranks)].max())
        full = max(costs.values()) if costs else 0.0
        exposed = max(0.0, after_max - before_max)
        hidden = max(0.0, full - exposed)
        record_comm_event(
            self.stats,
            category,
            operations=1,
            messages=messages,
            nbytes=nbytes,
            modeled_seconds=exposed,
        )
        perf_count("overlap.exposed_seconds", exposed)
        perf_count("overlap.hidden_seconds", hidden)

    def isend(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> CommRequest:
        """Post a nonblocking send; the payload departs at the sender's clock.

        Consecutive isends from one rank serialise on its link (the message
        occupies it for the Hockney cost).  Statistics are recorded by the
        matching ``irecv`` wait; waiting on the send request only advances
        the sender to the departure-complete time (the buffer is free).
        """
        self._check_rank(src)
        self._check_rank(dst)
        nbytes = payload_nbytes(payload)
        cost = self.machine.message_cost(src, dst, nbytes)
        start = max(float(self._clock[src]), float(self._send_busy[src]))
        finish = start + cost
        self._send_busy[src] = finish
        self._mailboxes.setdefault((src, dst), []).append(
            (finish, payload, nbytes)
        )
        perf_count("overlap.requests")

        def complete() -> None:
            self._clock[src] = max(self._clock[src], finish)
            return None

        return CommRequest("isend", category, complete)

    def irecv(
        self,
        src: int,
        dst: int,
        *,
        category: str = StatCategory.SEND_RECV,
    ) -> CommRequest:
        """Post a nonblocking receive; wait delivers the matching isend.

        Sends between the same ``(src, dst)`` pair match in FIFO order.  At
        wait time the receiver's clock advances to the message's arrival
        time; bytes are counted like :meth:`exchange` (self-messages count
        bytes but no message) and the exposed wait time is the event's
        modelled seconds.
        """
        self._check_rank(src)
        self._check_rank(dst)
        perf_count("overlap.requests")

        def complete() -> Any:
            queue = self._mailboxes.get((src, dst))
            if not queue:
                raise RuntimeError(
                    f"irecv({src} -> {dst}) waited with no matching isend "
                    "posted; post the send before waiting on the receive"
                )
            finish, payload, nbytes = queue.pop(0)
            cost = self.machine.message_cost(src, dst, nbytes)
            before = float(self._clock[dst])
            self._clock[dst] = max(before, finish)
            # The clock delta also contains catching up to a sender whose
            # clock was already ahead (rank skew).  Blocking collectives
            # absorb that skew silently in their group sync, so only the
            # transfer-cost share counts as exposed communication here.
            exposed = min(max(0.0, float(self._clock[dst]) - before), cost)
            hidden = max(0.0, cost - exposed)
            record_comm_event(
                self.stats,
                category,
                operations=1,
                messages=0 if src == dst else 1,
                nbytes=nbytes,
                modeled_seconds=exposed,
            )
            perf_count("overlap.exposed_seconds", exposed)
            perf_count("overlap.hidden_seconds", hidden)
            return payload

        return CommRequest("irecv", category, complete)

    def ibcast(
        self,
        root: int,
        payload: Any,
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.BCAST,
    ) -> CommRequest:
        """Post a nonblocking broadcast from ``root`` to ``group``.

        Cost and volume match :meth:`bcast` exactly; the group's start time
        is captured at the post, clocks advance only at wait — work done in
        between hides the transfer.
        """
        ranks = self._group(group)
        if root not in ranks:
            raise ValueError(f"broadcast root {root} is not part of the group")
        g = len(ranks)
        nbytes = payload_nbytes(payload)
        rounds = max(1, math.ceil(math.log2(g))) if g > 1 else 0
        cost = rounds * (self.machine.alpha + self.machine.beta * nbytes)
        start = float(self._clock[ranks].max())
        perf_count("overlap.requests")

        def complete() -> dict[int, Any]:
            self._overlap_finish(
                ranks,
                start,
                {r: cost for r in ranks},
                category=category,
                messages=max(0, g - 1),
                nbytes=nbytes * max(0, g - 1),
            )
            return {r: payload for r in ranks}

        return CommRequest("ibcast", category, complete)

    def iallgather(
        self,
        payloads: Mapping[int, Any],
        *,
        group: Sequence[int] | None = None,
        category: str = StatCategory.ALLGATHER,
    ) -> CommRequest:
        """Post a nonblocking allgather; cost and volume match :meth:`allgather`."""
        ranks = self._group(group)
        g = len(ranks)
        sizes = {r: payload_nbytes(payloads.get(r)) for r in ranks}
        total = sum(sizes.values())
        costs = {
            r: (g - 1) * self.machine.alpha + self.machine.beta * (total - sizes[r])
            for r in ranks
        }
        start = float(self._clock[ranks].max())
        gathered = {r: payloads.get(r) for r in ranks}
        perf_count("overlap.requests")

        def complete() -> dict[int, dict[int, Any]]:
            self._overlap_finish(
                ranks,
                start,
                costs,
                category=category,
                messages=g * (g - 1),
                nbytes=total * max(0, g - 1),
            )
            return {r: dict(gathered) for r in ranks}

        return CommRequest("iallgather", category, complete)

    def wait(self, request: CommRequest) -> Any:
        """Complete one nonblocking request and return its result."""
        return request.wait()

    def waitall(self, requests: Sequence[CommRequest]) -> list[Any]:
        """Complete requests in posting order; returns their results."""
        return [request.wait() for request in requests]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _group(self, group: Sequence[int] | None) -> list[int]:
        return normalize_group(self.n_ranks, group)

    def _check_rank(self, rank: int) -> None:
        check_rank(self.n_ranks, rank)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SimMPI(p={self.n_ranks}, elapsed={self.elapsed():.6f}s)"
