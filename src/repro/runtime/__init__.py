"""Runtime substrate: communicator backends, process grids, statistics.

Distributed algorithms in this repository are written in bulk-synchronous
SPMD "orchestration" style against the :class:`Communicator` protocol; which
runtime actually executes them is selected by :func:`make_communicator`
(``backend=...`` argument or the ``REPRO_BACKEND`` environment variable):

* ``"sim"`` (default) — :class:`SimMPI`, a single-process simulator.  Each
  simulated rank owns local state; local kernels are executed rank-by-rank
  while their wall-clock time is measured, and communication primitives move
  NumPy payloads between rank-local stores while charging a Hockney
  ``α + β·bytes`` cost model with logarithmic trees for broadcast/reduce,
  mirroring the latency/bandwidth analysis in Sections IV and V of the
  paper.  It reports *modelled parallel time*: absolute values are not
  comparable to the paper's cluster, but relative behaviour (who wins,
  crossovers, scaling shape) is preserved.
* ``"mpi"`` — :class:`MPIBackend`, the same orchestration surface on top of
  ``mpi4py``, falling back to a built-in single-rank emulator when mpi4py
  is not installed.

:class:`CommStats` records per-category bytes, message counts, modelled time
and measured local time for either backend — this is what the paper's
breakdown figures (Fig. 7 and Fig. 12) report.
"""

from repro.runtime.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    CommRequest,
    Communicator,
    available_backends,
    make_communicator,
    register_backend,
    resolve_backend_name,
)
from repro.runtime.config import (
    MachineModel,
    NODE_CONFIGS,
    OVERLAP_ENV_VAR,
    overlap_enabled,
    ranks_for_nodes,
)
from repro.runtime.grid import ProcessGrid
from repro.runtime.loopback import LoopbackComm, LoopbackWorld, run_spmd
from repro.runtime.mpi_backend import (
    EmulatedComm,
    MPIBackend,
    mpi_is_available,
    world_rank,
    world_size,
)
from repro.runtime.partitioner import (
    DEFAULT_PARTITIONER,
    PARTITIONER_ENV_VAR,
    REPARTITION_ENV_VAR,
    Partitioner,
    available_partitioners,
    make_partitioner,
    register_partitioner,
    repartition_threshold,
    resolve_partitioner_name,
    verify_placement,
)
from repro.runtime.simmpi import SimMPI, payload_nbytes
from repro.runtime.stats import CommStats, StatCategory
from repro.runtime.world import ServiceWorld

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "CommRequest",
    "Communicator",
    "available_backends",
    "make_communicator",
    "register_backend",
    "resolve_backend_name",
    "MachineModel",
    "NODE_CONFIGS",
    "OVERLAP_ENV_VAR",
    "overlap_enabled",
    "ranks_for_nodes",
    "ProcessGrid",
    "CommStats",
    "StatCategory",
    "SimMPI",
    "payload_nbytes",
    "EmulatedComm",
    "LoopbackComm",
    "LoopbackWorld",
    "MPIBackend",
    "mpi_is_available",
    "run_spmd",
    "world_rank",
    "world_size",
    "DEFAULT_PARTITIONER",
    "PARTITIONER_ENV_VAR",
    "REPARTITION_ENV_VAR",
    "Partitioner",
    "available_partitioners",
    "make_partitioner",
    "register_partitioner",
    "repartition_threshold",
    "resolve_partitioner_name",
    "verify_placement",
    "ServiceWorld",
]
