"""Simulated MPI runtime substrate.

The original system runs on a 16-node cluster with 4 MPI ranks per node and
6 OpenMP threads per rank.  This environment has a single core and no MPI
implementation, so the distributed algorithms in this repository execute
against a *simulated* MPI layer:

* Algorithms are written in bulk-synchronous SPMD style.  Each simulated
  rank owns local state (matrix blocks, tuple buffers, …) and local kernels
  are executed rank-by-rank while their wall-clock time is measured.
* Communication primitives (:class:`SimMPI` collectives) move NumPy payloads
  between rank-local stores and charge a Hockney ``α + β·bytes`` cost model,
  with logarithmic trees for broadcast/reduce, exactly mirroring the
  latency/bandwidth analysis in Sections IV and V of the paper.
* :class:`CommStats` records per-category bytes, message counts, modelled
  time and measured local time — this is what the paper's breakdown figures
  (Fig. 7 and Fig. 12) report.

The simulator reports *modelled parallel time*: the per-rank clocks advance
by measured local compute (divided by a modelled intra-rank OpenMP speedup)
plus modelled communication cost, and collectives synchronise the clocks of
the participating group.  Absolute values are not comparable to the paper's
cluster, but the relative behaviour (who wins, crossovers, scaling shape)
is driven by communication volume and per-rank work, which are preserved.
"""

from repro.runtime.config import MachineModel, NODE_CONFIGS, ranks_for_nodes
from repro.runtime.grid import ProcessGrid
from repro.runtime.stats import CommStats, StatCategory
from repro.runtime.simmpi import SimMPI

__all__ = [
    "MachineModel",
    "NODE_CONFIGS",
    "ranks_for_nodes",
    "ProcessGrid",
    "CommStats",
    "StatCategory",
    "SimMPI",
]
