"""Long-lived SPMD worlds: create once, serve many runs, shut down once.

Everything in the batch pipeline tears its world down after one trace.
:class:`ServiceWorld` inverts that lifecycle, following the long-running
driver/worker pattern of nengo_mpi: the expensive resource — the set of
OS processes and their low-level communicator — is acquired **once** and
then *mints* as many orchestration-level communicators as callers need,
all multiplexed over the same underlying processes.

Minting is cheap and collective-free: a :class:`~repro.runtime.simmpi.SimMPI`
(``sim`` backend) or an :class:`~repro.runtime.mpi_backend.MPIBackend`
bound to the shared low-level comm (``mpi`` backend) is pure per-process
bookkeeping.  Each minted communicator carries

* its own logical rank count (a *rank namespace*: tenants of the
  always-on service may size their grids independently),
* its own placement map and partitioner,
* its own :class:`~repro.runtime.stats.CommStats` — per-tenant traffic
  accounting is isolated by construction, which is what makes the
  service's per-tenant comm signature comparable to a cold replay.

The one rule multiplexing imposes: operations on communicators minted
from the same world must be *serialised in the same order on every
process* (the usual SPMD discipline — the service guarantees it by
flushing tenants sequentially).  Concurrent collectives from two minted
communicators over one world would interleave on the shared transport.

Worlds accept any mpi4py-surface low-level comm: the genuine
``MPI.COMM_WORLD``, a :class:`~repro.runtime.loopback.LoopbackComm` from a
threaded test world, or the single-rank emulator when mpi4py is absent.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.backend import Communicator, resolve_backend_name
from repro.runtime.config import MachineModel
from repro.runtime.mpi_backend import MPIBackend, load_mpi
from repro.runtime.partitioner import Partitioner
from repro.runtime.simmpi import SimMPI

__all__ = ["ServiceWorld"]


class ServiceWorld:
    """A persistent execution substrate shared by many communicators.

    Parameters
    ----------
    backend:
        Registered backend name (``"sim"`` or ``"mpi"``); resolved like
        :func:`repro.runtime.make_communicator` (``REPRO_BACKEND`` applies
        when ``None``).
    comm:
        Low-level mpi4py-surface communicator to multiplex (``mpi``
        backend only): ``MPI.COMM_WORLD``, a loopback world's
        ``LoopbackComm``, or ``None`` to load mpi4py / the single-rank
        emulator once for the world's lifetime.
    machine:
        Default :class:`~repro.runtime.config.MachineModel` for minted
        communicators (per-mint override available).
    """

    def __init__(
        self,
        backend: str | None = None,
        *,
        comm: Any = None,
        machine: MachineModel | None = None,
        force_emulator: bool = False,
    ) -> None:
        self.backend_name = resolve_backend_name(backend)
        if self.backend_name not in ("sim", "mpi"):
            raise ValueError(
                f"ServiceWorld multiplexes the built-in backends only "
                f"(got {self.backend_name!r}; use 'sim' or 'mpi')"
            )
        if self.backend_name == "sim" and comm is not None:
            raise ValueError(
                "the sim backend is single-process and owns its world; "
                "a low-level comm only applies to backend='mpi'"
            )
        self.machine = machine
        self._closed = False
        self._minted = 0
        if self.backend_name == "mpi":
            if comm is None:
                comm, _ = load_mpi(force_emulator)
            self._comm = comm
        else:
            self._comm = None

    # ------------------------------------------------------------------
    @property
    def world_size(self) -> int:
        """Number of OS processes backing the world (1 for ``sim``)."""
        return 1 if self._comm is None else int(self._comm.Get_size())

    @property
    def world_rank(self) -> int:
        """This process's rank in the world (0 for ``sim``)."""
        return 0 if self._comm is None else int(self._comm.Get_rank())

    @property
    def minted(self) -> int:
        """How many communicators this world has handed out so far."""
        return self._minted

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` ran; minting then raises."""
        return self._closed

    # ------------------------------------------------------------------
    def communicator(
        self,
        n_ranks: int,
        *,
        machine: MachineModel | None = None,
        partitioner: "str | Partitioner | None" = None,
        track_time: bool = True,
    ) -> Communicator:
        """Mint a fresh orchestration communicator over this world.

        The minted communicator has ``n_ranks`` logical ranks, its own
        statistics and (on ``mpi``) its own placement over the world's
        processes; construction performs no collectives, so minting mid-
        service is safe on every process as long as all processes mint in
        the same order.
        """
        if self._closed:
            raise RuntimeError("ServiceWorld is shut down; no new communicators")
        if self.backend_name == "sim":
            comm: Communicator = SimMPI(
                n_ranks,
                machine if machine is not None else self.machine,
                track_time=track_time,
            )
        else:
            comm = MPIBackend(
                n_ranks,
                machine if machine is not None else self.machine,
                comm=self._comm,
                partitioner=partitioner,
                track_time=track_time,
            )
        self._minted += 1
        return comm

    def barrier(self) -> None:
        """Synchronise every process of the world (no-op for ``sim``)."""
        if self._comm is not None:
            self._comm.barrier()

    def shutdown(self) -> None:
        """Retire the world: final barrier, then refuse further minting.

        Idempotent.  The low-level comm is *not* freed — `COMM_WORLD` and
        loopback comms are owned by their creators — but the world object
        stops handing out communicators, so a shut-down service cannot
        silently keep serving.
        """
        if self._closed:
            return
        self.barrier()
        self._closed = True

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceWorld":
        """Context-manager entry: the world itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: shut the world down."""
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "closed" if self._closed else "open"
        return (
            f"ServiceWorld(backend={self.backend_name!r}, "
            f"world_size={self.world_size}, minted={self._minted}, {state})"
        )
