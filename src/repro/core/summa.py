"""Static sparse SUMMA (the baseline the dynamic algorithms replace).

Sparse SUMMA performs ``√p`` rounds; in round ``k`` the blocks ``A_{i,k}``
are broadcast across the ``i``-th process row and the blocks ``B_{k,j}``
across the ``j``-th process column, after which each rank multiplies the two
blocks it received and accumulates into its *local* output block — the
aggregation is entirely local, which is SUMMA's advantage when both
operands have similar sizes and its disadvantage when one operand is tiny
(the whole large operand still gets broadcast).

When :func:`repro.runtime.config.overlap_enabled` is true (the default),
the broadcasts are double-buffered: the panels of round ``k + 1`` are
posted with :meth:`Communicator.ibcast` before the round-``k`` local
multiplies run, so panel transfers overlap with compute.  Requests are
completed in posting order, which keeps the results byte-identical to the
synchronous schedule (set ``REPRO_OVERLAP=off`` for the oracle).

This implementation is used

* as the reference static algorithm for correctness tests,
* by the CombBLAS/CTF-style competitor backends, and
* by :class:`repro.core.api.DynamicProduct` to compute the initial product
  (optionally together with the Bloom filter ``F`` needed by the
  general-update algorithm).
"""

from __future__ import annotations

from repro.perf.recorder import perf_phase
from repro.runtime.config import overlap_enabled
from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import Semiring
from repro.sparse import BloomFilterMatrix, COOMatrix, CSRMatrix, DHBMatrix, spgemm_local
from repro.distributed import BlockDistribution, DynamicDistMatrix, StaticDistMatrix
from repro.distributed.dist_matrix import DistMatrixBase

__all__ = ["summa_spgemm"]


def _local_block_as_operand(block):
    """Blocks participate in local SpGEMM as-is (all layouts supported)."""
    return block


def summa_spgemm(
    comm: Communicator,
    grid: ProcessGrid,
    a: DistMatrixBase,
    b: DistMatrixBase,
    *,
    semiring: Semiring | None = None,
    output: str = "dynamic",
    compute_bloom: bool = False,
    bcast_category: str = StatCategory.BCAST,
    mult_category: str = StatCategory.LOCAL_MULT,
) -> tuple[DistMatrixBase, dict[int, BloomFilterMatrix] | None]:
    """Distributed ``C = A·B`` with the sparse SUMMA algorithm.

    Parameters
    ----------
    a, b:
        Distributed operands on the same process grid; ``a.shape = (n, k)``
        and ``b.shape = (k, m)``.
    output:
        ``"dynamic"`` (DHB blocks, the layout the paper uses for results) or
        ``"static"`` (CSR blocks).
    compute_bloom:
        Also build, per rank, the Bloom-filter matrix ``F`` of the local
        output block (bit ``k mod 64`` set for every contributing global
        inner index ``k``) — required to seed the general-update algorithm.

    Returns
    -------
    (C, blooms):
        ``C`` is a distributed matrix on the same grid; ``blooms`` maps rank
        to its local Bloom filter (``None`` unless ``compute_bloom``).
    """
    semiring = semiring if semiring is not None else a.semiring
    n, k_dim = a.shape
    k_dim2, m = b.shape
    if k_dim != k_dim2:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    if a.grid.n_ranks != grid.n_ranks or b.grid.n_ranks != grid.n_ranks:
        raise ValueError("operands must live on the given process grid")
    q = grid.q
    out_dist = BlockDistribution(n, m, grid)
    owned = comm.owned_ranks(grid.all_ranks())

    # Per-rank accumulators for the ranks this process owns: partial COO
    # contributions and (optionally) the bloom bits, merged after √p rounds.
    partials: dict[int, list[COOMatrix]] = {r: [] for r in owned}
    blooms: dict[int, BloomFilterMatrix] | None = None
    if compute_bloom:
        blooms = {
            r: BloomFilterMatrix(out_dist.block_shape_of_rank(r)) for r in owned
        }

    overlapped = overlap_enabled()

    def _post_round(k: int):
        """Post the round-``k`` panel broadcasts as nonblocking requests.

        Returns ``(group_ranks, request)`` pairs in deterministic order
        (row broadcasts ``i = 0..q-1``, then column broadcasts
        ``j = 0..q-1``) — the same order the synchronous oracle issues its
        blocking broadcasts, so waiting in posting order reproduces the
        exact payload placement.
        """
        reqs = []
        for i in range(q):
            root = grid.rank_of(i, k)
            row_ranks = grid.row_group(i)
            reqs.append(
                (
                    row_ranks,
                    comm.ibcast(
                        root,
                        a.blocks.get(root),
                        group=row_ranks,
                        category=bcast_category,
                    ),
                )
            )
        for j in range(q):
            root = grid.rank_of(k, j)
            col_ranks = grid.col_group(j)
            reqs.append(
                (
                    col_ranks,
                    comm.ibcast(
                        root,
                        b.blocks.get(root),
                        group=col_ranks,
                        category=bcast_category,
                    ),
                )
            )
        return reqs

    def _wait_round(reqs):
        """Complete a posted round in posting order; return (a_recv, b_recv)."""
        a_recv: dict[int, object] = {}
        b_recv: dict[int, object] = {}
        for idx, (group_ranks, req) in enumerate(reqs):
            received = comm.wait(req)
            target = a_recv if idx < q else b_recv
            for rank in group_ranks:
                target[rank] = received[rank]
        return a_recv, b_recv

    with perf_phase("summa"):
        pending = None
        if overlapped:
            with perf_phase("bcast"):
                pending = _post_round(0)
        for k in range(q):
            with perf_phase("bcast"):
                if overlapped:
                    # Double buffering: complete the already-posted round-k
                    # panels, then immediately post round k+1 so its
                    # broadcasts progress while this round's local
                    # multiplies run.
                    a_recv, b_recv = _wait_round(pending)
                    pending = _post_round(k + 1) if k + 1 < q else None
                else:
                    # Synchronous oracle schedule: broadcast A_{i,k} across
                    # each process row i and B_{k,j} across each process
                    # column j.  Only the process owning the root holds the
                    # payload; the backend moves it to everyone hosting a
                    # rank of the group.
                    a_recv = {}
                    for i in range(q):
                        root = grid.rank_of(i, k)
                        row_ranks = grid.row_group(i)
                        received = comm.bcast(
                            root,
                            a.blocks.get(root),
                            group=row_ranks,
                            category=bcast_category,
                        )
                        for rank in row_ranks:
                            a_recv[rank] = received[rank]
                    b_recv = {}
                    for j in range(q):
                        root = grid.rank_of(k, j)
                        col_ranks = grid.col_group(j)
                        received = comm.bcast(
                            root,
                            b.blocks.get(root),
                            group=col_ranks,
                            category=bcast_category,
                        )
                        for rank in col_ranks:
                            b_recv[rank] = received[rank]

            inner_offset = int(a.dist.col_offsets[k])
            with perf_phase("local_mult"):
                for rank in owned:
                    a_blk = _local_block_as_operand(a_recv[rank])
                    b_blk = _local_block_as_operand(b_recv[rank])

                    def _mult(a_blk=a_blk, b_blk=b_blk, inner_offset=inner_offset):
                        return spgemm_local(
                            a_blk,
                            b_blk,
                            semiring,
                            compute_bloom=compute_bloom,
                            inner_offset=inner_offset,
                        )

                    coo, bloom = comm.run_local(rank, _mult, category=mult_category)
                    if coo.nnz:
                        partials[rank].append(coo)
                    if compute_bloom and bloom is not None and blooms is not None:
                        blooms[rank].or_inplace(bloom)

        # Local accumulation of the per-round partial products.
        out_blocks: dict[int, object] = {}
        with perf_phase("accumulate"):
            for rank in owned:
                block_shape = out_dist.block_shape_of_rank(rank)
                pieces = partials[rank]

                def _accumulate(pieces=pieces, block_shape=block_shape):
                    if not pieces:
                        combined = COOMatrix.empty(block_shape, semiring)
                    else:
                        combined = pieces[0]
                        for extra in pieces[1:]:
                            combined = combined.concatenate(extra)
                        combined = combined.sum_duplicates()
                    if output == "dynamic":
                        return DHBMatrix.from_coo(combined, combine_duplicates=False)
                    return CSRMatrix.from_coo(combined, dedup=False)

                out_blocks[rank] = comm.run_local(
                    rank, _accumulate, category=mult_category
                )

    if output == "dynamic":
        result: DistMatrixBase = DynamicDistMatrix(
            comm, grid, out_dist, semiring, out_blocks
        )
    elif output == "static":
        result = StaticDistMatrix(comm, grid, out_dist, semiring, out_blocks, layout="csr")
    else:
        raise ValueError(f"unknown output layout {output!r} (use 'dynamic' or 'static')")
    return result, blooms
