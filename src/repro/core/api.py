"""High-level API: a maintained (dynamic) distributed matrix product.

:class:`DynamicProduct` owns the two operands ``A`` and ``B`` (dynamic
distributed matrices), the maintained result ``C = A·B`` and — for the
general-update mode — the Bloom filter ``F``.  Batches of updates are
applied through :meth:`DynamicProduct.apply_updates`, which

1. assembles the distributed (hypersparse DCSR) update matrices,
2. runs the appropriate dynamic SpGEMM algorithm (Algorithm 1 for algebraic
   updates, Algorithm 2 for general updates) to bring ``C`` up to date, and
3. applies the updates to the operands themselves.

This is the entry point used by the examples, the applications in
:mod:`repro.apps`, and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.semirings import Semiring, SemiringError
from repro.sparse import BloomFilterMatrix, COOMatrix, CSRMatrix, spgemm_local
from repro.distributed import (
    DynamicDistMatrix,
    StaticDistMatrix,
    UpdateBatch,
    build_update_matrix,
)
from repro.core.summa import summa_spgemm
from repro.core.dynamic_algebraic import dynamic_spgemm_algebraic
from repro.core.dynamic_general import dynamic_spgemm_general

__all__ = ["DynamicProduct", "UpdateResult"]


@dataclass
class UpdateResult:
    """Summary of one :meth:`DynamicProduct.apply_updates` call."""

    #: update tuples in the A-side batch (0 if none)
    a_updates: int
    #: update tuples in the B-side batch (0 if none)
    b_updates: int
    #: result entries touched (algebraic) or recomputed (general)
    touched_outputs: int
    #: which algorithm ran: "algebraic", "general" or "noop"
    algorithm: str


class DynamicProduct:
    """A distributed matrix product maintained under batch updates."""

    def __init__(
        self,
        comm: Communicator,
        grid: ProcessGrid,
        a: DynamicDistMatrix,
        b: DynamicDistMatrix,
        *,
        semiring: Semiring | None = None,
        mode: str = "algebraic",
        compute_initial: bool = True,
    ) -> None:
        if mode not in ("algebraic", "general"):
            raise ValueError(f"unknown mode {mode!r} (use 'algebraic' or 'general')")
        if a.shape[1] != b.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: A {a.shape} x B {b.shape}"
            )
        if a is b:
            raise ValueError(
                "A and B must be distinct objects (pass a.copy() to maintain "
                "A·A); the dynamic algorithms need the left operand to stay "
                "at its pre-update state while the right operand is updated"
            )
        self.comm = comm
        self.grid = grid
        self.a = a
        self.b = b
        self.semiring = semiring if semiring is not None else a.semiring
        self.mode = mode
        if self.mode == "algebraic" and self.semiring.name != a.semiring.name:
            raise ValueError("operands must use the product's semiring")
        self.c: DynamicDistMatrix
        self.f: dict[int, BloomFilterMatrix]
        if compute_initial:
            c, blooms = summa_spgemm(
                comm,
                grid,
                a,
                b,
                semiring=self.semiring,
                output="dynamic",
                compute_bloom=(mode == "general"),
            )
            self.c = c  # type: ignore[assignment]
            self.f = blooms if blooms is not None else {}
        else:
            self.c = DynamicDistMatrix.empty(
                comm, grid, (a.shape[0], b.shape[1]), self.semiring
            )
            self.f = {
                rank: BloomFilterMatrix(self.c.dist.block_shape_of_rank(rank))
                for rank in comm.owned_ranks(grid.all_ranks())
            }

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the maintained product ``C`` (rows of A × cols of B)."""
        return (self.a.shape[0], self.b.shape[1])

    # ------------------------------------------------------------------
    def apply_updates(
        self,
        a_batch: UpdateBatch | None = None,
        b_batch: UpdateBatch | None = None,
    ) -> UpdateResult:
        """Apply one batch of updates to A and/or B and refresh ``C``.

        In ``"algebraic"`` mode every batch must consist of additive
        insertions (``kind="insert"``); value updates that are not additive
        and deletions raise :class:`SemiringError`.  In ``"general"`` mode
        insert/update batches are applied with MERGE semantics and delete
        batches with MASK semantics, and Algorithm 2 recomputes the affected
        entries of ``C``.
        """
        if a_batch is None and b_batch is None:
            return UpdateResult(0, 0, 0, "noop")
        self._validate_batch(a_batch, self.a.shape, "A")
        self._validate_batch(b_batch, self.b.shape, "B")
        if self.mode == "algebraic":
            return self._apply_algebraic(a_batch, b_batch)
        return self._apply_general(a_batch, b_batch)

    # ------------------------------------------------------------------
    def _apply_algebraic(
        self, a_batch: UpdateBatch | None, b_batch: UpdateBatch | None
    ) -> UpdateResult:
        for batch, name in ((a_batch, "A"), (b_batch, "B")):
            if batch is not None and batch.kind != "insert":
                raise SemiringError(
                    f"algebraic mode only supports additive insertions; the "
                    f"{name}-side batch has kind {batch.kind!r} — use "
                    "mode='general' instead"
                )
        a_star = self._build_update(a_batch)
        b_star = self._build_update(b_batch)
        # B must become B' *before* Algorithm 1 runs (C* = A*·B' + A·B*),
        # while A stays at its pre-update state until afterwards.
        if b_star is not None:
            self.b.add_update(b_star)
        touched = dynamic_spgemm_algebraic(
            self.comm,
            self.grid,
            self.a,
            self.b,
            a_star if a_star is not None else self._empty_update(self.a.shape),
            b_star,
            self.c,
            semiring=self.semiring,
        )
        if a_star is not None:
            self.a.add_update(a_star)
        return UpdateResult(
            a_updates=a_batch.total_tuples if a_batch else 0,
            b_updates=b_batch.total_tuples if b_batch else 0,
            touched_outputs=touched,
            algorithm="algebraic",
        )

    def _apply_general(
        self, a_batch: UpdateBatch | None, b_batch: UpdateBatch | None
    ) -> UpdateResult:
        a_star = self._build_update(a_batch, marker_values=(a_batch is not None and a_batch.kind == "delete"))
        b_star = self._build_update(b_batch, marker_values=(b_batch is not None and b_batch.kind == "delete"))
        # COMPUTE_PATTERN needs the pre-update A for the A·B* term; keep a
        # copy only when both operands change (otherwise the term vanishes
        # or the old A is not needed).
        a_old = self.a.copy() if (a_star is not None and b_star is not None) else self.a
        # Apply the updates to the operands first: Algorithm 2 recomputes
        # affected outputs from the *new* operands.
        self._apply_to_operand(self.b, b_batch, b_star)
        self._apply_to_operand(self.a, a_batch, a_star)
        recomputed = dynamic_spgemm_general(
            self.comm,
            self.grid,
            a_old,
            self.a,
            self.b,
            a_star if a_star is not None else self._empty_update(self.a.shape),
            b_star,
            self.c,
            self.f,
            semiring=self.semiring,
        )
        return UpdateResult(
            a_updates=a_batch.total_tuples if a_batch else 0,
            b_updates=b_batch.total_tuples if b_batch else 0,
            touched_outputs=recomputed,
            algorithm="general",
        )

    # ------------------------------------------------------------------
    def _apply_to_operand(
        self,
        operand: DynamicDistMatrix,
        batch: UpdateBatch | None,
        update: StaticDistMatrix | None,
    ) -> None:
        if batch is None or update is None:
            return
        if batch.kind == "delete":
            operand.mask_update(update)
        elif batch.kind == "update":
            operand.merge_update(update)
        else:  # insert
            if self.mode == "algebraic":
                operand.add_update(update)
            else:
                operand.merge_update(update)

    def _build_update(
        self, batch: UpdateBatch | None, *, marker_values: bool = False
    ) -> StaticDistMatrix | None:
        if batch is None:
            return None
        target_dist = self.a.dist if batch.shape == self.a.shape else self.b.dist
        update = build_update_matrix(
            self.comm,
            self.grid,
            target_dist,
            batch,
            self.semiring,
            layout="dcsr",
            combine="add" if (self.mode == "algebraic" and batch.kind == "insert") else "last",
        )
        if marker_values:
            # Deletion markers: only the structure matters; normalise the
            # values to the multiplicative identity so that the pattern
            # computation cannot be annihilated by semiring zeros.
            for rank, block in update.blocks.items():
                block.values[:] = self.semiring.one
        return update

    def _empty_update(self, shape: tuple[int, int]) -> StaticDistMatrix:
        empty = StaticDistMatrix.empty(
            self.comm, self.grid, shape, self.semiring, layout="dcsr"
        )
        empty.dist = self.a.dist if shape == self.a.shape else self.b.dist
        return empty

    def _validate_batch(
        self, batch: UpdateBatch | None, shape: tuple[int, int], name: str
    ) -> None:
        if batch is None:
            return
        if batch.shape != shape:
            raise ValueError(
                f"{name}-side batch shape {batch.shape} does not match the "
                f"operand shape {shape}"
            )
        if batch.semiring.name != self.semiring.name:
            raise ValueError(f"{name}-side batch uses a different semiring")

    # ------------------------------------------------------------------
    # verification helpers
    # ------------------------------------------------------------------
    def recompute_reference(self) -> COOMatrix:
        """Recompute ``A·B`` from scratch, sequentially (for verification).

        Does not touch the simulated clocks; intended for tests and examples
        that want to check the maintained ``C`` against the ground truth.
        """
        a_global = CSRMatrix.from_coo(self.a.to_coo_global())
        b_global = CSRMatrix.from_coo(self.b.to_coo_global())
        ref, _ = spgemm_local(a_global, b_global, self.semiring, use_scipy=False)
        return ref

    def result_coo(self) -> COOMatrix:
        """The maintained result ``C`` as one global COO matrix."""
        return self.c.to_coo_global()

    def check_consistency(self, *, rtol: float = 1e-9) -> bool:
        """``True`` when the maintained ``C`` matches a fresh recomputation.

        Structural zeros that carry the semiring's annihilating value are
        ignored on both sides so that explicit zeros (which can legitimately
        differ between the incremental and the from-scratch computation) do
        not cause false negatives.
        """
        import numpy as np

        maintained = self.result_coo().drop_zeros().sort()
        reference = self.recompute_reference().drop_zeros().sort()
        if maintained.nnz != reference.nnz:
            return False
        return bool(
            np.array_equal(maintained.rows, reference.rows)
            and np.array_equal(maintained.cols, reference.cols)
            and np.allclose(maintained.values, reference.values, rtol=rtol)
        )
