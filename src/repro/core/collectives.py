"""Sparse aggregation collectives.

The partial products ``X^i_{k,j}`` produced on different ranks have
*different sparsity patterns*, so a plain ``MPI_Reduce`` over dense buffers
is not applicable.  Section VI-A describes the solution: "an approach based
on a custom reduce-scatter implementation for sparse matrices".

:func:`sparse_reduce_to_root` implements that scheme on the orchestration
runtime:

1. every contributing rank splits its local sparse partial result into
   ``g`` row ranges (one per group member) — the *scatter* pattern;
2. one ``ALLTOALLV`` inside the group delivers each row range to the rank
   responsible for it (charged to the *Reduce-Scatter* category of the
   Fig. 12 breakdown);
3. each rank ⊕-combines the pieces it received (local work);
4. the combined row ranges are gathered onto the root (charged to the
   *Scatter* category, matching the paper's naming of the final
   redistribution step).

:func:`bloom_reduce_to_root` is the same pattern for Bloom-filter matrices
with bitwise-OR combination.

Both functions follow the partial-mapping contract of the communicator
protocol: ``contributions`` holds entries only for the group ranks this
process owns (possibly none), which is why the output block ``shape`` is an
explicit required argument — it cannot be inferred from a mapping that may
legitimately be empty on some processes.  The reduced result is returned on
the process owning ``root`` and is ``None`` everywhere else.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import Semiring
from repro.sparse import BloomFilterMatrix, COOMatrix

__all__ = ["sparse_reduce_to_root", "bloom_reduce_to_root"]


def _row_range_offsets(n_rows: int, parts: int) -> np.ndarray:
    base = n_rows // parts
    rem = n_rows % parts
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:rem] += 1
    offsets = np.zeros(parts + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def _check_contribution_shapes(
    contributions: Mapping[int, object], shape: tuple[int, int]
) -> None:
    mismatched = {
        c.shape for c in contributions.values() if c is not None and c.shape != shape
    }
    if mismatched:
        raise ValueError(
            f"contributions disagree with the declared block shape {shape}: "
            f"{sorted(mismatched)}"
        )


def sparse_reduce_to_root(
    comm: Communicator,
    group: Sequence[int],
    root: int,
    contributions: Mapping[int, COOMatrix],
    semiring: Semiring,
    *,
    shape: tuple[int, int],
    scatter_category: str = StatCategory.REDUCE_SCATTER,
    gather_category: str = StatCategory.SCATTER,
    combine_category: str = StatCategory.REDUCE_SCATTER,
) -> COOMatrix | None:
    """⊕-reduce sparse partial results of a group onto ``root``.

    ``contributions[rank]`` is the local partial result of ``rank`` (a COO
    matrix in the *output block's local coordinates*); the mapping is
    partial — it covers at most the group ranks owned by this process, and
    missing owned ranks contribute nothing.  ``shape`` is the output
    block's shape and must be passed explicitly (it is a global fact the
    caller knows; inferring it from a possibly-empty mapping silently
    produced ``(0, 0)`` results, a live bug with partial mappings).

    Returns the combined COO matrix on the process owning ``root`` and
    ``None`` on every other process.
    """
    group = list(group)
    if root not in group:
        raise ValueError(f"reduction root {root} is not part of the group")
    _check_contribution_shapes(contributions, shape)
    g = len(group)
    offsets = _row_range_offsets(shape[0], g)

    # Step 1+2: split by destination row range, exchange within the group.
    sendbufs: dict[int, dict[int, COOMatrix]] = {}
    for rank in comm.owned_ranks(group):
        coo = contributions.get(rank)
        if coo is None:
            coo = COOMatrix.empty(shape, semiring)

        def _split(coo=coo):
            pieces: dict[int, COOMatrix] = {}
            if coo.nnz == 0:
                return pieces
            dest = np.searchsorted(offsets, coo.rows, side="right") - 1
            for slot in np.unique(dest):
                sel = dest == slot
                pieces[int(slot)] = COOMatrix(
                    shape=shape,
                    rows=coo.rows[sel],
                    cols=coo.cols[sel],
                    values=coo.values[sel],
                    semiring=semiring,
                )
            return pieces

        pieces = comm.run_local(rank, _split, category=combine_category)
        sendbufs[rank] = {
            group[slot]: piece for slot, piece in pieces.items() if piece.nnz
        }
    received = comm.alltoallv(sendbufs, group=group, category=scatter_category)

    # Step 3: locally ⊕-combine the received row-range pieces.
    combined: dict[int, COOMatrix] = {}
    for rank in comm.owned_ranks(group):
        pieces = [p for _src, p in sorted(received.get(rank, {}).items())]

        def _combine(pieces=pieces):
            if not pieces:
                return COOMatrix.empty(shape, semiring)
            out = pieces[0]
            for extra in pieces[1:]:
                out = out.concatenate(extra)
            return out.sum_duplicates()

        combined[rank] = comm.run_local(rank, _combine, category=combine_category)

    # Step 4: gather the combined row ranges onto the root.
    gathered = comm.gather(root, combined, group=group, category=gather_category)

    if not comm.owns(root):
        return None

    def _assemble():
        pieces = [p for _r, p in sorted(gathered.items()) if p is not None and p.nnz]
        if not pieces:
            return COOMatrix.empty(shape, semiring)
        out = pieces[0]
        for extra in pieces[1:]:
            out = out.concatenate(extra)
        # Row ranges are disjoint, so a plain concatenation would suffice;
        # sum_duplicates keeps the result canonical regardless.
        return out.sum_duplicates()

    return comm.run_local(root, _assemble, category=combine_category)


def bloom_reduce_to_root(
    comm: Communicator,
    group: Sequence[int],
    root: int,
    contributions: Mapping[int, BloomFilterMatrix],
    *,
    shape: tuple[int, int],
    scatter_category: str = StatCategory.REDUCE_SCATTER,
    gather_category: str = StatCategory.SCATTER,
    combine_category: str = StatCategory.REDUCE_SCATTER,
) -> BloomFilterMatrix | None:
    """Bitwise-OR reduce Bloom-filter partials of a group onto ``root``.

    Same partial-mapping contract and explicit ``shape`` as
    :func:`sparse_reduce_to_root`; returns ``None`` on processes that do
    not own ``root``.
    """
    group = list(group)
    if root not in group:
        raise ValueError(f"reduction root {root} is not part of the group")
    _check_contribution_shapes(contributions, shape)
    g = len(group)
    offsets = _row_range_offsets(shape[0], g)

    sendbufs: dict[int, dict[int, BloomFilterMatrix]] = {}
    for rank in comm.owned_ranks(group):
        bloom = contributions.get(rank)
        if bloom is None:
            bloom = BloomFilterMatrix(shape)

        def _split(bloom=bloom):
            pieces: dict[int, BloomFilterMatrix] = {}
            for (i, j), bits in bloom.items():
                slot = int(np.searchsorted(offsets, i, side="right") - 1)
                piece = pieces.get(slot)
                if piece is None:
                    piece = BloomFilterMatrix(shape)
                    pieces[slot] = piece
                piece.set_bits(i, j, bits)
            return pieces

        pieces = comm.run_local(rank, _split, category=combine_category)
        sendbufs[rank] = {
            group[slot]: piece for slot, piece in pieces.items() if piece.nnz
        }
    received = comm.alltoallv(sendbufs, group=group, category=scatter_category)

    combined: dict[int, BloomFilterMatrix] = {}
    for rank in comm.owned_ranks(group):
        pieces = [p for _src, p in sorted(received.get(rank, {}).items())]

        def _combine(pieces=pieces):
            out = BloomFilterMatrix(shape)
            for piece in pieces:
                out.or_inplace(piece)
            return out

        combined[rank] = comm.run_local(rank, _combine, category=combine_category)

    gathered = comm.gather(root, combined, group=group, category=gather_category)

    if not comm.owns(root):
        return None

    def _assemble():
        out = BloomFilterMatrix(shape)
        for _r, piece in sorted(gathered.items()):
            if piece is not None:
                out.or_inplace(piece)
        return out

    return comm.run_local(root, _assemble, category=combine_category)
