"""Distributed transposition (Section V-C).

The dynamic SpGEMM algorithms extend naturally to transposed operands: the
update blocks are broadcast over columns instead of rows (and vice versa)
and in some cases the initial transpose send/receive round disappears.
Rather than duplicating every algorithm with ``transA`` / ``transB`` flags,
this module provides an explicit distributed transposition: block
``(i, j)`` is sent to grid position ``(j, i)`` and transposed locally, which
yields a correctly distributed ``Aᵀ`` that can be fed to any of the
algorithms.  Because all block splits are the same even split, the
transposed block shapes line up with the ``(m, n)`` distribution exactly.
"""

from __future__ import annotations

from repro.runtime.stats import StatCategory
from repro.distributed import BlockDistribution, StaticDistMatrix
from repro.distributed.dist_matrix import DistMatrixBase
from repro.sparse import CSRMatrix, DCSRMatrix

__all__ = ["transpose_dist"]


def transpose_dist(mat: DistMatrixBase, *, layout: str = "csr") -> StaticDistMatrix:
    """Distributed transpose of a 2D-distributed matrix.

    Every block is exchanged with its transposed grid position (one
    point-to-point message per off-diagonal rank) and transposed locally.
    The result is a static distributed matrix in the requested layout.
    """
    comm, grid = mat.comm, mat.grid
    n, m = mat.shape
    out_dist = BlockDistribution(m, n, grid)

    messages = []
    for rank in comm.owned_ranks(grid.all_ranks()):
        dst = grid.transpose_rank(rank)
        messages.append((rank, dst, mat.blocks[rank]))
    inbox = comm.exchange(messages, category=StatCategory.SEND_RECV)

    out_blocks: dict[int, object] = {}
    for rank in comm.owned_ranks(grid.all_ranks()):
        items = inbox.get(rank, [])
        if len(items) != 1:
            raise RuntimeError(
                f"transpose exchange delivered {len(items)} blocks to rank {rank}"
            )
        block = items[0][1]

        def _local_transpose(block=block):
            coo = block.to_coo().transpose()
            if layout == "csr":
                return CSRMatrix.from_coo(coo, dedup=False)
            return DCSRMatrix.from_coo(coo, dedup=False)

        out_blocks[rank] = comm.run_local(
            rank, _local_transpose, category=StatCategory.LOCAL_COMPUTE
        )

    return StaticDistMatrix(comm, grid, out_dist, mat.semiring, out_blocks, layout=layout)
