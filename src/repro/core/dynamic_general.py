"""Algorithm 2 — MPI-parallel dynamic SpGEMM for general updates.

General updates (e.g. deletions under ``(min, +)`` or value increases under
an idempotent ``⊕``) cannot be folded into ``C`` by addition, so the
affected entries of ``C`` must be *recomputed*.  The algorithm limits both
communication and computation to what the update can actually influence:

1. ``C*, F* ← COMPUTE_PATTERN(A, A*, B', B*)`` — the sparsity pattern of
   ``C* = A*·B' ⊕ A·B*`` (the entries of ``C`` that may change) and its
   Bloom filter, computed with the machinery of Algorithm 1
   (:func:`repro.core.dynamic_algebraic.compute_cstar` with
   ``compute_bloom=True``).
2. ``E ← (F | F*)`` masked at the pattern of ``C*`` — a Bloom filter for
   exactly the output entries that need recomputation.
3. ``R`` — the row-wise OR of ``E``, reduced across each process row; bit
   ``k mod 64`` of ``r_i`` says "some output in row ``i`` may need inner
   index ``k``".
4. ``A^R`` — ``A'`` filtered by ``R``: only rows with ``r_i ≠ 0`` and within
   them only columns admitted by the bitfield are kept.  This is the only
   part of the (large) ``A'`` that is ever communicated.
5. A SUMMA-like loop broadcasting ``A^R`` over process rows and the ``C*``
   pattern over process columns; the local multiplication is *masked* at
   ``C*`` and also produces fresh Bloom bits ``H``.
6. ``Z`` and ``H`` are aggregated with the sparse reduce-scatter and merged
   into ``C`` and ``F``: every entry in the ``C*`` pattern is overwritten
   with its recomputed value — or deleted, if no term contributes any more.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.runtime.config import overlap_enabled
from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import Semiring
from repro.sparse import (
    BLOOM_BITS,
    BloomFilterMatrix,
    COOMatrix,
    DCSRMatrix,
    pattern_row_index,
    spgemm_local_masked,
)
from repro.distributed import DynamicDistMatrix
from repro.distributed.dist_matrix import DistMatrixBase
from repro.core.collectives import bloom_reduce_to_root, sparse_reduce_to_root
from repro.core.dynamic_algebraic import compute_cstar, _transpose_exchange

__all__ = ["dynamic_spgemm_general", "filter_by_row_bloom"]


def filter_by_row_bloom(
    block, row_bits: np.ndarray, col_offset: int, semiring: Semiring
) -> DCSRMatrix:
    """Filter a local block of ``A'`` by the row Bloom vector ``R``.

    Keeps row ``r`` only when ``row_bits[r] != 0`` and, within a kept row,
    keeps column ``k`` only when bit ``(k + col_offset) mod 64`` is set in
    ``row_bits[r]`` (``col_offset`` converts block-local columns to global
    inner indices).  Returns a hypersparse DCSR block ``A^R``.
    """
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    vals_out: list[np.ndarray] = []
    iterator = (
        block.iter_rows()
        if hasattr(block, "iter_rows")
        else _csr_iter(block)
    )
    for r, cols, vals in iterator:
        bits = int(row_bits[r]) if r < row_bits.size else 0
        if bits == 0 or cols.size == 0:
            continue
        global_k = cols.astype(np.uint64) + np.uint64(col_offset)
        admitted = ((np.uint64(bits) >> (global_k % np.uint64(BLOOM_BITS))) & np.uint64(1)).astype(bool)
        if not np.any(admitted):
            continue
        kept = cols[admitted]
        rows_out.append(np.full(kept.size, r, dtype=np.int64))
        cols_out.append(kept)
        vals_out.append(vals[admitted])
    if not rows_out:
        return DCSRMatrix.empty(block.shape, semiring)
    coo = COOMatrix(
        shape=block.shape,
        rows=np.concatenate(rows_out),
        cols=np.concatenate(cols_out),
        values=np.concatenate(vals_out),
        semiring=semiring,
    )
    return DCSRMatrix.from_coo(coo, dedup=False)


def _csr_iter(block):
    for i in block.nonzero_rows():
        cols, vals = block.row(int(i))
        yield int(i), cols, vals


def dynamic_spgemm_general(
    comm: Communicator,
    grid: ProcessGrid,
    a_old: DistMatrixBase,
    a_prime: DistMatrixBase,
    b_prime: DistMatrixBase,
    a_star: DistMatrixBase,
    b_star: DistMatrixBase | None,
    c: DynamicDistMatrix,
    f: Mapping[int, BloomFilterMatrix],
    *,
    semiring: Semiring | None = None,
) -> int:
    """Apply a *general* update to the maintained product ``C`` (and ``F``).

    Parameters
    ----------
    a_old:
        The left operand *before* the update (needed by ``COMPUTE_PATTERN``;
        pass ``a_prime`` if the old matrix is no longer available — the
        computed pattern is then still a superset for pure insertions, but
        simultaneous deletions on both operands require the true old ``A``).
    a_prime, b_prime:
        The operands *after* the update.
    a_star, b_star:
        Hypersparse update-pattern matrices (structure = changed entries,
        deletions included as structural non-zeros).  ``b_star=None`` means
        the right operand did not change.
    c, f:
        The maintained dynamic result matrix and its per-rank Bloom filter;
        both are updated in place.

    Returns the number of output entries that were recomputed.
    """
    semiring = semiring if semiring is not None else c.semiring
    q = grid.q
    out_dist = c.dist
    owned = comm.owned_ranks(grid.all_ranks())

    # ------------------------------------------------------------------
    # 1. C* pattern and F* (COMPUTE_PATTERN).  Both mappings are partial
    #    (owned ranks only); the nnz census makes the pattern sizes — which
    #    gate broadcasts and the early exit — globally known.
    # ------------------------------------------------------------------
    cstar_blocks, fstar_blocks = compute_cstar(
        comm,
        grid,
        a_old,
        b_prime,
        a_star,
        b_star,
        semiring=semiring,
        compute_bloom=True,
    )
    assert fstar_blocks is not None

    cstar_nnz = comm.host_merge(
        {rank: int(blk.nnz) for rank, blk in cstar_blocks.items()}
    )
    total_pattern = sum(cstar_nnz.values())
    if total_pattern == 0:
        return 0

    # ------------------------------------------------------------------
    # 2. E = (F | F*) masked at the pattern of C*  (local).
    # 3. R = row-wise OR of E, allreduced over each process row.
    # ------------------------------------------------------------------
    row_bits_per_rank: dict[int, np.ndarray] = {}
    for rank in owned:
        block_rows = out_dist.block_shape_of_rank(rank)[0]
        cstar = cstar_blocks[rank]
        f_blk = f[rank]
        fstar_blk = fstar_blocks[rank]

        def _row_or(cstar=cstar, f_blk=f_blk, fstar_blk=fstar_blk, block_rows=block_rows):
            merged = f_blk.or_with(fstar_blk)
            pattern = zip(cstar.rows, cstar.cols)
            e = merged.masked_by((int(i), int(j)) for i, j in pattern)
            bits = np.zeros(block_rows, dtype=np.uint64)
            for (i, _j), b in e.items():
                bits[i] |= np.uint64(b)
            return bits

        row_bits_per_rank[rank] = comm.run_local(
            rank, _row_or, category=StatCategory.LOCAL_COMPUTE
        )

    for i in range(q):
        row_ranks = grid.row_group(i)
        payloads = {r: row_bits_per_rank[r] for r in comm.owned_ranks(row_ranks)}
        reduced = comm.allreduce(
            payloads,
            lambda x, y: np.bitwise_or(x, y),
            group=row_ranks,
            category=StatCategory.ALLREDUCE,
        )
        for r in comm.owned_ranks(row_ranks):
            row_bits_per_rank[r] = reduced[r]

    # ------------------------------------------------------------------
    # 4. A^R: filter A' by R  (local).
    # ------------------------------------------------------------------
    ar_blocks: dict[int, DCSRMatrix] = {}
    for rank in owned:
        _br, bc = grid.coords_of(rank)
        col_offset = int(a_prime.dist.col_offsets[bc])
        block = a_prime.blocks[rank]
        bits = row_bits_per_rank[rank]

        def _filter(block=block, bits=bits, col_offset=col_offset):
            return filter_by_row_bloom(block, bits, col_offset, semiring)

        ar_blocks[rank] = comm.run_local(
            rank, _filter, category=StatCategory.LOCAL_COMPUTE
        )

    # ------------------------------------------------------------------
    # 5. SUMMA-like masked multiplication loop.
    # ------------------------------------------------------------------
    ar_t = _transpose_exchange(comm, grid, ar_blocks)
    z_blocks: dict[int, list[COOMatrix]] = {r: [] for r in owned}
    h_blocks: dict[int, BloomFilterMatrix] = {
        r: BloomFilterMatrix(out_dist.block_shape_of_rank(r)) for r in owned
    }

    overlapped = overlap_enabled()

    def _post_round(k: int):
        """Post round-``k`` broadcasts (A^R rows, then gated C* columns).

        The gate ``cstar_nnz[root] == 0`` mirrors the synchronous schedule
        exactly — the nnz census is globally known before the loop, so the
        set of posted broadcasts is identical on every process.
        """
        reqs = []
        for i in range(q):
            root = grid.rank_of(i, k)
            row_ranks = grid.row_group(i)
            reqs.append(
                (
                    "row",
                    row_ranks,
                    root,
                    comm.ibcast(
                        root,
                        ar_t.get(root),
                        group=row_ranks,
                        category=StatCategory.BCAST,
                    ),
                )
            )
        for j in range(q):
            root = grid.rank_of(k, j)
            if cstar_nnz[root] == 0:
                continue
            col_ranks = grid.col_group(j)
            reqs.append(
                (
                    "col",
                    col_ranks,
                    root,
                    comm.ibcast(
                        root,
                        cstar_blocks.get(root),
                        group=col_ranks,
                        category=StatCategory.BCAST,
                    ),
                )
            )
        return reqs

    pending = _post_round(0) if overlapped else None
    for k in range(q):
        ar_recv: dict[int, DCSRMatrix] = {}
        cstar_recv: dict[int, dict] = {}
        if overlapped:
            # Complete the prefetched round-k broadcasts in posting order,
            # then immediately post round k+1 so those transfers overlap
            # with this round's masked multiplies and reductions.
            for kind, group_ranks, root, req in pending:
                received = comm.wait(req)
                if kind == "row":
                    for rank in group_ranks:
                        ar_recv[rank] = received[rank]
                else:
                    cstar_recv[root] = received
            pending = _post_round(k + 1) if k + 1 < q else None
        else:
            # Broadcast A^R_{k,i} across each process row i (root (i, k)).
            for i in range(q):
                root = grid.rank_of(i, k)
                row_ranks = grid.row_group(i)
                received = comm.bcast(
                    root, ar_t.get(root), group=row_ranks, category=StatCategory.BCAST
                )
                for rank in row_ranks:
                    ar_recv[rank] = received[rank]

        for j in range(q):
            col_ranks = grid.col_group(j)
            root = grid.rank_of(k, j)
            if cstar_nnz[root] == 0:
                continue
            if overlapped:
                received = cstar_recv[root]
            else:
                # Broadcast the C*_{k,j} pattern down column j (root (k, j)).
                received = comm.bcast(
                    root,
                    cstar_blocks.get(root),
                    group=col_ranks,
                    category=StatCategory.BCAST,
                )
            contributions: dict[int, COOMatrix] = {}
            bloom_contribs: dict[int, BloomFilterMatrix] = {}
            local_any = False
            for rank in comm.owned_ranks(col_ranks):
                i = grid.row_of(rank)
                ar_blk = ar_recv[rank]
                b_blk = b_prime.blocks[rank]
                cstar_pattern = received[rank]
                inner_offset = int(a_prime.dist.col_offsets[i])

                def _mult(
                    ar_blk=ar_blk,
                    b_blk=b_blk,
                    cstar_pattern=cstar_pattern,
                    inner_offset=inner_offset,
                ):
                    # Section VI-B: each rank builds its own hash index of
                    # the broadcast C* block rather than receiving the hash
                    # table itself.
                    mask_rows = pattern_row_index(cstar_pattern)
                    return spgemm_local_masked(
                        ar_blk,
                        b_blk,
                        semiring,
                        mask_rows,
                        compute_bloom=True,
                        inner_offset=inner_offset,
                    )

                coo, bloom = comm.run_local(
                    rank, _mult, category=StatCategory.LOCAL_MULT
                )
                contributions[rank] = coo
                local_any = local_any or coo.nnz > 0
                if bloom is not None:
                    bloom_contribs[rank] = bloom
            if not comm.host_fold(local_any, lambda x, y: x or y):
                continue
            shape = out_dist.block_shape_of_rank(root)
            reduced = sparse_reduce_to_root(
                comm, col_ranks, root, contributions, semiring, shape=shape
            )
            if reduced is not None and reduced.nnz:
                z_blocks[root].append(reduced)
            reduced_bloom = bloom_reduce_to_root(
                comm, col_ranks, root, bloom_contribs, shape=shape
            )
            if reduced_bloom is not None:
                h_blocks[root].or_inplace(reduced_bloom)

    # ------------------------------------------------------------------
    # 6. Merge Z into C and H into F, masked at the pattern of C* (local).
    # ------------------------------------------------------------------
    recomputed = 0
    for rank in owned:
        cstar = cstar_blocks[rank]
        if cstar.nnz == 0:
            continue
        recomputed += cstar.nnz
        pieces = z_blocks[rank]
        h_blk = h_blocks[rank]
        c_blk = c.blocks[rank]
        f_blk = f[rank]

        def _merge(pieces=pieces, cstar=cstar, c_blk=c_blk, f_blk=f_blk, h_blk=h_blk):
            if pieces:
                z = pieces[0]
                for extra in pieces[1:]:
                    z = z.concatenate(extra)
                z_map = z.sum_duplicates().to_dict()
            else:
                z_map = {}
            for i, j in zip(cstar.rows, cstar.cols):
                key = (int(i), int(j))
                if key in z_map:
                    c_blk.insert(key[0], key[1], z_map[key], combine=None)
                    f_blk.overwrite(key[0], key[1], h_blk.get(key[0], key[1]))
                else:
                    # No surviving contribution: the entry becomes a
                    # structural zero of C'.
                    c_blk.delete(key[0], key[1])
                    f_blk.delete(key[0], key[1])

        comm.run_local(rank, _merge, category=StatCategory.LOCAL_ADDITION)
    return int(comm.host_fold(recomputed, lambda x, y: x + y))
