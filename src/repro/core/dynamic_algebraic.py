"""Algorithm 1 — MPI-parallel dynamic SpGEMM for algebraic updates.

Given ``C = A·B`` and updates expressible as semiring additions
(``A' = A ⊕ A*``, ``B' = B ⊕ B*``), distributivity yields::

    C' = (A ⊕ A*)·(B ⊕ B*) = C ⊕ A*·B' ⊕ A·B*  =  C ⊕ C*

so only ``C* = A*·B' ⊕ A·B*`` has to be computed.  The static SUMMA
algorithm would broadcast blocks of the *large* operands ``A`` and ``B'``;
Algorithm 1 instead broadcasts only the hypersparse ``A*`` / ``B*`` blocks
(after one transpose send/receive round that moves each block onto the
process row / column it must be broadcast over) and pays an extra
*non-local aggregation* of the partial results with the custom sparse
reduce-scatter of :mod:`repro.core.collectives`.

Per round ``k`` (of ``√p`` rounds), on every rank ``(i, j)``::

    X^i_{k,j} = A*_{k,i} · B'_{i,j}        (aggregated onto rank (k, j))
    Y^j_{i,k} = A_{i,j}  · B*_{j,k}        (aggregated onto rank (i, k))

After the loop every rank ``(i, j)`` holds ``X_{i,j}`` and ``Y_{i,j}`` and
applies ``C'_{i,j} = C_{i,j} ⊕ X_{i,j} ⊕ Y_{i,j}`` locally.

The whole computation follows the partial-mapping contract: every process
touches only the blocks of the logical ranks it owns, and the two
control-flow decisions — skipping a round / a per-root broadcast when the
update block is empty, and gating the sparse reduce-scatter on whether any
partial product is non-empty — are agreed through the uncharged
``host_merge`` / ``host_fold`` control plane so that every process (and
every world size) takes identical branches.  Empty hypersparse blocks are
*never* broadcast: a per-root nnz census skips them individually, which is
where the hypersparse update matrices actually save broadcast volume.

:func:`compute_cstar` returns the per-rank local blocks of ``C*`` for the
owned ranks (and, optionally, the Bloom filter ``F*`` required by
Algorithm 2 — this is the ``COMPUTE_PATTERN`` subroutine of the paper);
:func:`dynamic_spgemm_algebraic` additionally folds ``C*`` into a dynamic
result matrix ``C``.
"""

from __future__ import annotations

from repro.runtime.config import overlap_enabled
from repro.runtime.grid import ProcessGrid
from repro.runtime.backend import Communicator
from repro.runtime.stats import StatCategory
from repro.semirings import Semiring, SemiringError
from repro.sparse import BloomFilterMatrix, COOMatrix, spgemm_local
from repro.distributed import BlockDistribution, DynamicDistMatrix
from repro.distributed.dist_matrix import DistMatrixBase, StaticDistMatrix

__all__ = ["compute_cstar", "dynamic_spgemm_algebraic"]


def _check_operands(
    grid: ProcessGrid,
    a: DistMatrixBase,
    b_prime: DistMatrixBase,
    a_star: DistMatrixBase,
    b_star: DistMatrixBase | None,
) -> tuple[int, int, int]:
    n, k_dim = a.shape
    k_dim2, m = b_prime.shape
    if k_dim != k_dim2:
        raise ValueError(
            f"inner dimensions do not match: A {a.shape} x B' {b_prime.shape}"
        )
    if a_star.shape != a.shape:
        raise ValueError(f"A* shape {a_star.shape} does not match A shape {a.shape}")
    if b_star is not None and b_star.shape != b_prime.shape:
        raise ValueError(
            f"B* shape {b_star.shape} does not match B' shape {b_prime.shape}"
        )
    for op in (a, b_prime, a_star) + ((b_star,) if b_star is not None else ()):
        if op.grid.n_ranks != grid.n_ranks:
            raise ValueError("all operands must live on the same process grid")
    return n, k_dim, m


def _nnz_census(comm: Communicator, blocks: dict[int, object]) -> dict[int, int]:
    """Global ``rank -> nnz`` of a partial block mapping (control plane)."""
    return comm.host_merge({rank: int(blk.nnz) for rank, blk in blocks.items()})


def compute_cstar(
    comm: Communicator,
    grid: ProcessGrid,
    a: DistMatrixBase,
    b_prime: DistMatrixBase,
    a_star: DistMatrixBase,
    b_star: DistMatrixBase | None = None,
    *,
    semiring: Semiring | None = None,
    compute_bloom: bool = False,
) -> tuple[dict[int, COOMatrix], dict[int, BloomFilterMatrix] | None]:
    """Compute the per-rank local blocks of ``C* = A*·B' ⊕ A·B*``.

    ``b_star=None`` means ``B* = 0`` (the Figure-9 workload, where only the
    left operand changes).  When ``compute_bloom`` is set the function also
    returns the Bloom filter ``F*`` of ``C*`` (``COMPUTE_PATTERN`` in
    Algorithm 2): bit ``k mod 64`` of ``f*_{i,j}`` is set whenever the term
    with global inner index ``k`` contributed to ``c*_{i,j}``.

    Returns ``(cstar_blocks, fstar_blocks)``, both *partial* mappings over
    the ranks this process owns; ``cstar_blocks[rank]`` is a COO matrix in
    the local coordinates of rank's output block.
    """
    semiring = semiring if semiring is not None else a.semiring
    n, _k_dim, m = _check_operands(grid, a, b_prime, a_star, b_star)
    q = grid.q
    out_dist = BlockDistribution(n, m, grid)
    owned = comm.owned_ranks(grid.all_ranks())

    # ------------------------------------------------------------------
    # Transpose send/receive round: A*_{i,j} -> rank (j,i), B*_{i,j} -> (j,i)
    # so that the block needed as broadcast root in round k already sits on
    # the right process row / column.  The nnz census makes every block's
    # size globally known, so the empty-broadcast skips below are identical
    # on every process.
    # ------------------------------------------------------------------
    astar_t = _transpose_exchange(comm, grid, a_star)
    astar_nnz = _nnz_census(comm, astar_t)
    bstar_t = _transpose_exchange(comm, grid, b_star) if b_star is not None else None
    bstar_nnz = _nnz_census(comm, bstar_t) if bstar_t is not None else None

    partials: dict[int, list[COOMatrix]] = {r: [] for r in owned}
    bloom_parts: dict[int, BloomFilterMatrix] | None = None
    if compute_bloom:
        bloom_parts = {
            r: BloomFilterMatrix(out_dist.block_shape_of_rank(r)) for r in owned
        }

    from repro.core.collectives import bloom_reduce_to_root, sparse_reduce_to_root

    overlapped = overlap_enabled()

    def _post_xterm(k: int):
        """Post the round-``k`` X-term broadcasts (``A*_{k,i}`` over row i).

        Returns ``None`` when the whole round is skipped (every root block
        empty), otherwise ``(row_ranks, request_or_None)`` pairs — a
        ``None`` request records a per-root empty-block skip, mirroring the
        ``None`` markers of the synchronous schedule.
        """
        if not any(astar_nnz[grid.rank_of(i, k)] for i in range(q)):
            return None
        reqs = []
        for i in range(q):
            root = grid.rank_of(i, k)
            row_ranks = grid.row_group(i)
            if astar_nnz[root] == 0:
                reqs.append((row_ranks, None))
                continue
            reqs.append(
                (
                    row_ranks,
                    comm.ibcast(
                        root,
                        astar_t.get(root),
                        group=row_ranks,
                        category=StatCategory.BCAST,
                    ),
                )
            )
        return reqs

    def _post_yterm(k: int):
        """Post the round-``k`` Y-term broadcasts (``B*_{k,j}`` over col j)."""
        if bstar_t is None or bstar_nnz is None:
            return None
        if not any(bstar_nnz[grid.rank_of(k, j)] for j in range(q)):
            return None
        reqs = []
        for j in range(q):
            root = grid.rank_of(k, j)
            col_ranks = grid.col_group(j)
            if bstar_nnz[root] == 0:
                reqs.append((col_ranks, None))
                continue
            reqs.append(
                (
                    col_ranks,
                    comm.ibcast(
                        root,
                        bstar_t.get(root),
                        group=col_ranks,
                        category=StatCategory.BCAST,
                    ),
                )
            )
        return reqs

    def _wait_term(reqs):
        """Complete a posted term in posting order; ``None`` marks skips."""
        recv: dict[int, object] = {}
        for group_ranks, req in reqs:
            received = comm.wait(req) if req is not None else None
            for rank in group_ranks:
                recv[rank] = None if received is None else received[rank]
        return recv

    pending = (_post_xterm(0), _post_yterm(0)) if overlapped else (None, None)
    for k in range(q):
        a_recv: dict[int, object] | None = None
        b_recv: dict[int, object] | None = None
        if overlapped:
            # Complete the prefetched round-k broadcasts, then post round
            # k+1 so the hypersparse update blocks travel while this
            # round's multiplies and sparse reductions run.
            x_reqs, y_reqs = pending
            if x_reqs is not None:
                a_recv = _wait_term(x_reqs)
            if y_reqs is not None:
                b_recv = _wait_term(y_reqs)
            pending = (
                (_post_xterm(k + 1), _post_yterm(k + 1)) if k + 1 < q else (None, None)
            )
        elif any(astar_nnz[grid.rank_of(i, k)] for i in range(q)):
            # Broadcast A*_{k,i} across process row i — but only for rows
            # whose block is non-empty; a None marker records the skip so
            # the multiplication loop contributes nothing for that row.
            a_recv = {}
            for i in range(q):
                root = grid.rank_of(i, k)
                row_ranks = grid.row_group(i)
                if astar_nnz[root] == 0:
                    for rank in row_ranks:
                        a_recv[rank] = None
                    continue
                received = comm.bcast(
                    root,
                    astar_t.get(root),
                    group=row_ranks,
                    category=StatCategory.BCAST,
                )
                for rank in row_ranks:
                    a_recv[rank] = received[rank]

        # ---------------- X-term: X^i_{k,j} = A*_{k,i} · B'_{i,j} --------
        if a_recv is not None:
            for j in range(q):
                col_ranks = grid.col_group(j)
                root = grid.rank_of(k, j)
                contributions: dict[int, COOMatrix] = {}
                bloom_contribs: dict[int, BloomFilterMatrix] = {}
                local_any = False
                for rank in comm.owned_ranks(col_ranks):
                    a_blk = a_recv[rank]
                    if a_blk is None:
                        continue
                    i = grid.row_of(rank)
                    b_blk = b_prime.blocks[rank]
                    inner_offset = int(a_star.dist.col_offsets[i])

                    def _mult(a_blk=a_blk, b_blk=b_blk, inner_offset=inner_offset):
                        return spgemm_local(
                            a_blk,
                            b_blk,
                            semiring,
                            compute_bloom=compute_bloom,
                            inner_offset=inner_offset,
                        )

                    coo, bloom = comm.run_local(
                        rank, _mult, category=StatCategory.LOCAL_MULT
                    )
                    contributions[rank] = coo
                    local_any = local_any or coo.nnz > 0
                    if compute_bloom and bloom is not None:
                        bloom_contribs[rank] = bloom
                if comm.host_fold(local_any, lambda x, y: x or y):
                    shape = out_dist.block_shape_of_rank(root)
                    reduced = sparse_reduce_to_root(
                        comm, col_ranks, root, contributions, semiring, shape=shape
                    )
                    if reduced is not None and reduced.nnz:
                        partials[root].append(reduced)
                    if compute_bloom and bloom_parts is not None:
                        reduced_bloom = bloom_reduce_to_root(
                            comm, col_ranks, root, bloom_contribs, shape=shape
                        )
                        if reduced_bloom is not None:
                            bloom_parts[root].or_inplace(reduced_bloom)

        # ---------------- Y-term: Y^j_{i,k} = A_{i,j} · B*_{j,k} ---------
        if not overlapped:
            if bstar_t is None or bstar_nnz is None:
                continue
            if not any(bstar_nnz[grid.rank_of(k, j)] for j in range(q)):
                continue
            b_recv = {}
            for j in range(q):
                root = grid.rank_of(k, j)
                col_ranks = grid.col_group(j)
                if bstar_nnz[root] == 0:
                    for rank in col_ranks:
                        b_recv[rank] = None
                    continue
                received = comm.bcast(
                    root, bstar_t.get(root), group=col_ranks, category=StatCategory.BCAST
                )
                for rank in col_ranks:
                    b_recv[rank] = received[rank]
        if b_recv is None:
            continue

        for i in range(q):
            row_ranks = grid.row_group(i)
            root = grid.rank_of(i, k)
            contributions = {}
            bloom_contribs = {}
            local_any = False
            for rank in comm.owned_ranks(row_ranks):
                b_blk = b_recv[rank]
                if b_blk is None:
                    continue
                j = grid.col_of(rank)
                a_blk = a.blocks[rank]
                inner_offset = int(a.dist.col_offsets[j])

                def _mult(a_blk=a_blk, b_blk=b_blk, inner_offset=inner_offset):
                    return spgemm_local(
                        a_blk,
                        b_blk,
                        semiring,
                        compute_bloom=compute_bloom,
                        inner_offset=inner_offset,
                    )

                coo, bloom = comm.run_local(
                    rank, _mult, category=StatCategory.LOCAL_MULT
                )
                contributions[rank] = coo
                local_any = local_any or coo.nnz > 0
                if compute_bloom and bloom is not None:
                    bloom_contribs[rank] = bloom
            if comm.host_fold(local_any, lambda x, y: x or y):
                shape = out_dist.block_shape_of_rank(root)
                reduced = sparse_reduce_to_root(
                    comm, row_ranks, root, contributions, semiring, shape=shape
                )
                if reduced is not None and reduced.nnz:
                    partials[root].append(reduced)
                if compute_bloom and bloom_parts is not None:
                    reduced_bloom = bloom_reduce_to_root(
                        comm, row_ranks, root, bloom_contribs, shape=shape
                    )
                    if reduced_bloom is not None:
                        bloom_parts[root].or_inplace(reduced_bloom)

    # ------------------------------------------------------------------
    # Per-rank accumulation of the reduced contributions (owned ranks).
    # ------------------------------------------------------------------
    cstar_blocks: dict[int, COOMatrix] = {}
    for rank in owned:
        block_shape = out_dist.block_shape_of_rank(rank)
        pieces = partials[rank]

        def _accumulate(pieces=pieces, block_shape=block_shape):
            if not pieces:
                return COOMatrix.empty(block_shape, semiring)
            out = pieces[0]
            for extra in pieces[1:]:
                out = out.concatenate(extra)
            return out.sum_duplicates()

        cstar_blocks[rank] = comm.run_local(
            rank, _accumulate, category=StatCategory.LOCAL_MULT
        )
    return cstar_blocks, bloom_parts


def dynamic_spgemm_algebraic(
    comm: Communicator,
    grid: ProcessGrid,
    a: DistMatrixBase,
    b_prime: DistMatrixBase,
    a_star: DistMatrixBase,
    b_star: DistMatrixBase | None,
    c: DynamicDistMatrix,
    *,
    semiring: Semiring | None = None,
    require_ring: bool = False,
) -> int:
    """Apply an algebraic update to the maintained product ``C``.

    Computes ``C* = A*·B' ⊕ A·B*`` with Algorithm 1 and folds it into ``C``
    (a dynamic distributed matrix) purely locally.  Returns the *global*
    number of structural non-zeros of ``C*`` (i.e. how many result entries
    were touched), identical on every process.

    ``require_ring=True`` asserts that the semiring is a ring, i.e. that
    *every* conceivable update (including deletions) is expressible as an
    algebraic update; without it the caller is responsible for only feeding
    updates that are genuine semiring additions.
    """
    semiring = semiring if semiring is not None else c.semiring
    if require_ring and not semiring.is_ring:
        raise SemiringError(
            f"semiring {semiring.name!r} is not a ring; general updates must "
            "use dynamic_spgemm_general"
        )
    if c.shape != (a.shape[0], b_prime.shape[1]):
        raise ValueError(
            f"result shape {c.shape} does not match A x B' = "
            f"({a.shape[0]}, {b_prime.shape[1]})"
        )
    cstar_blocks, _ = compute_cstar(
        comm, grid, a, b_prime, a_star, b_star, semiring=semiring, compute_bloom=False
    )
    touched = 0
    for rank, cstar in cstar_blocks.items():
        if cstar.nnz == 0:
            continue
        touched += cstar.nnz
        block = c.blocks[rank]
        comm.run_local(
            rank,
            block.add_update,
            cstar,
            category=StatCategory.LOCAL_ADDITION,
        )
    return int(comm.host_fold(touched, lambda x, y: x + y))


def _transpose_exchange(
    comm: Communicator, grid: ProcessGrid, mat
) -> dict[int, object]:
    """Send every block to its transposed grid position.

    ``mat`` is either a distributed matrix or a plain partial
    ``rank -> block`` mapping over this process's owned ranks.  Afterwards
    the returned (again partial) mapping holds, for each owned rank
    ``(r, c)``, the block originally stored on rank ``(c, r)`` — i.e. block
    ``(c, r)`` of the matrix — which is exactly the block that rank must
    broadcast in round ``r`` (for row broadcasts) or ``c`` (for column
    broadcasts).
    """
    blocks = mat.blocks if hasattr(mat, "blocks") else mat
    messages = []
    for rank in comm.owned_ranks(grid.all_ranks()):
        dst = grid.transpose_rank(rank)
        messages.append((rank, dst, blocks[rank]))
    inbox = comm.exchange(messages, category=StatCategory.SEND_RECV)
    received: dict[int, object] = {}
    for rank in comm.owned_ranks(grid.all_ranks()):
        items = inbox.get(rank, [])
        if len(items) != 1:
            raise RuntimeError(
                f"transpose exchange delivered {len(items)} blocks to rank {rank}"
            )
        received[rank] = items[0][1]
    return received
