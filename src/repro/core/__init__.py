"""The paper's primary contribution: distributed dynamic SpGEMM.

Modules
-------
* :mod:`repro.core.collectives` — the custom sparse reduce-scatter used to
  aggregate partial results (Section VI-A), plus a bitwise-OR reduction for
  Bloom-filter matrices.
* :mod:`repro.core.summa` — static sparse SUMMA, the "algorithm of choice"
  baseline that CombBLAS uses and that the dynamic algorithms replace.
* :mod:`repro.core.dynamic_algebraic` — Algorithm 1 (algebraic updates):
  ``C' = C + A*·B' + A·B*`` with broadcasts of only the hypersparse update
  blocks.
* :mod:`repro.core.dynamic_general` — Algorithm 2 (general updates): masked
  recomputation of the affected entries of ``C`` driven by 64-bit Bloom
  filters.
* :mod:`repro.core.transpose` — distributed transposition helpers
  (Section V-C).
* :mod:`repro.core.api` — :class:`DynamicProduct`, the high-level
  maintained-product interface used by the examples and applications.
"""

from repro.core.collectives import sparse_reduce_to_root, bloom_reduce_to_root
from repro.core.summa import summa_spgemm
from repro.core.dynamic_algebraic import dynamic_spgemm_algebraic, compute_cstar
from repro.core.dynamic_general import dynamic_spgemm_general
from repro.core.transpose import transpose_dist
from repro.core.api import DynamicProduct

__all__ = [
    "sparse_reduce_to_root",
    "bloom_reduce_to_root",
    "summa_spgemm",
    "dynamic_spgemm_algebraic",
    "compute_cstar",
    "dynamic_spgemm_general",
    "transpose_dist",
    "DynamicProduct",
]
