"""Figure 8: strong and weak scaling of insertions on R-MAT graphs.

Each data point is a timed-construction scenario
(:func:`repro.bench.workloads.construction_scenario`) replayed on a fresh
communicator.
"""

from repro.bench import experiments_updates

from conftest import run_experiment


def test_fig08_rmat_scaling(benchmark, profile):
    result = run_experiment(benchmark, experiments_updates.run_rmat_scaling, profile)
    assert result.metadata["protocol"] == "scenario:construction"
    assert {"strong", "weak"} == set(result.column("mode"))
