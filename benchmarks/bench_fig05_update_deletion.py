"""Figure 5a/5b: mean update and deletion performance vs. batch size.

Both protocols are replayable scenarios executed via ``Scenario.replay()``;
unsupported operations truncate a backend's replay and drop it from the
figure (PETSc deletions, as in the paper).
"""

from repro.bench import experiments_updates

from conftest import run_experiment


def test_fig05a_updates(benchmark, profile):
    result = run_experiment(
        benchmark, experiments_updates.run_updates_deletions, profile, operation="update"
    )
    assert result.experiment == "figure_5a"
    assert result.metadata["protocol"] == "scenario:update"


def test_fig05b_deletions(benchmark, profile):
    result = run_experiment(
        benchmark, experiments_updates.run_updates_deletions, profile, operation="delete"
    )
    assert result.metadata["protocol"] == "scenario:delete"
    # PETSc does not support deletions and must be absent (as in the paper)
    assert "petsc" not in set(result.column("backend"))
