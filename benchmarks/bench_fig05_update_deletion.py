"""Figure 5a/5b: mean update and deletion performance vs. batch size."""

from repro.bench import experiments_updates

from conftest import run_experiment


def test_fig05a_updates(benchmark, profile):
    result = run_experiment(
        benchmark, experiments_updates.run_updates_deletions, profile, operation="update"
    )
    assert result.experiment == "figure_5a"


def test_fig05b_deletions(benchmark, profile):
    result = run_experiment(
        benchmark, experiments_updates.run_updates_deletions, profile, operation="delete"
    )
    # PETSc does not support deletions and must be absent (as in the paper)
    assert "petsc" not in set(result.column("backend"))
