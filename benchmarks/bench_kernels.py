#!/usr/bin/env python
"""Kernel-tier benchmark: compiled cores vs the pure-Python oracles.

Measures the three hot local kernels behind the
:mod:`repro.sparse.kernels` tier switch on single-process workloads and
emits a schema-validated ``BENCH_kernels.json``:

``spgemm_rmat``
    Row-wise Gustavson SpGEMM (``use_scipy=False``) over a pair of
    R-MAT-skewed operands — the workload the compiled
    ``_gustavson_core`` exists for.  Measured once without and once with
    the Bloom fold (``:bloom`` tag), since the bit expansion is its own
    inner loop.

``dhb_batch_insert``
    Whole-batch vectorised insertion of a dense update into a DHB matrix
    whose touched rows already exist — the hit/miss probe
    (:func:`repro.sparse.kernels.dhb_insert.probe_existing_rows`) is the
    hot path.  The SPA bulk merge is exercised implicitly by the SpGEMM
    cells.

Each cell runs under one explicit ``kernel_tier``; the recorded
``kernels.tier_*`` counters prove which tier actually executed.  With
``--tier python`` / ``--tier compiled`` the scenario tags are tier-free,
so two single-tier documents can be matched run for run by
``repro.perf.compare`` — the CI numba leg gates::

    python benchmarks/bench_kernels.py --tier python \
        --out bench_out --filename BENCH_kernels_python.json
    python benchmarks/bench_kernels.py --tier compiled \
        --out bench_out --filename BENCH_kernels_compiled.json
    python -m repro.perf.compare bench_out/BENCH_kernels_python.json \
        bench_out/BENCH_kernels_compiled.json --expect-speedup 0.5

``--tier both`` emits one combined document with ``:<tier>`` tag
suffixes — the ``kernels`` figure of ``benchmarks/run_suite.py``.
``--tier compiled`` without numba fails loudly (RuntimeError from
``resolve_kernel_tier``) rather than silently benchmarking Python.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Any

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.perf import PerfRecorder, bench_document, bench_run_entry, use_recorder
from repro.semirings import MIN_PLUS, PLUS_TIMES
from repro.sparse import CSRMatrix, DHBMatrix, spgemm_local
from repro.sparse.kernels import numba_available

DEFAULT_REPEATS = 5
DEFAULT_SEED = 2022

#: SpGEMM operand scale: n×n R-MAT-skewed operands with ~AVG_DEG·n terms.
SPGEMM_N = 1500
SPGEMM_AVG_DEG = 8

#: DHB insert scale: rows of the seeded matrix hit by the dense batch.
DHB_ROWS = 600
DHB_COLS = 4096
DHB_BATCH = 24_000


def _rmat_coo(n: int, nnz: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """R-MAT-style skewed edge endpoints (power-law rows and columns)."""
    rng = np.random.default_rng(seed)
    # squaring a uniform variate biases ids towards 0 — the bursty-hub
    # degree profile that makes Gustavson rows collide heavily
    rows = np.minimum((rng.random(nnz) ** 2 * n).astype(np.int64), n - 1)
    cols = np.minimum((rng.random(nnz) ** 2 * n).astype(np.int64), n - 1)
    return rows, cols


def _spgemm_operands(seed: int) -> tuple[CSRMatrix, CSRMatrix]:
    from repro.sparse import COOMatrix

    n, nnz = SPGEMM_N, SPGEMM_N * SPGEMM_AVG_DEG
    mats = []
    for offset in (0, 1):
        rows, cols = _rmat_coo(n, nnz, seed + offset)
        vals = np.random.default_rng(seed + 10 + offset).random(nnz) + 0.1
        coo = COOMatrix((n, n), rows, cols, vals).sum_duplicates()
        mats.append(CSRMatrix.from_coo(coo, dedup=False))
    return mats[0], mats[1]


def _dhb_workload(seed: int):
    rng = np.random.default_rng(seed)
    base_rows = np.repeat(np.arange(DHB_ROWS, dtype=np.int64), 8)
    base_cols = rng.integers(0, DHB_COLS, size=base_rows.size)
    base_vals = rng.random(base_rows.size) + 0.1
    batch_rows = rng.integers(0, DHB_ROWS, size=DHB_BATCH)
    batch_cols = rng.integers(0, DHB_COLS, size=DHB_BATCH)
    batch_vals = rng.random(DHB_BATCH) + 0.1
    return (base_rows, base_cols, base_vals), (batch_rows, batch_cols, batch_vals)


def _measure(workload, *, repeats: int) -> tuple[float, PerfRecorder]:
    """Median wall time of ``workload()`` plus one run's counters.

    A workload may return its own measured seconds (to exclude untiered
    per-run setup such as building the matrix a batch lands in);
    returning ``None`` times the whole call.
    """
    workload()  # warm-up: imports, caches and (with numba) JIT compiles
    elapsed: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        inner = workload()
        outer = time.perf_counter() - started
        elapsed.append(outer if inner is None else float(inner))
    recorder = PerfRecorder()
    with use_recorder(recorder):
        workload()
    return float(statistics.median(elapsed)), recorder


def _entry(
    tag: str,
    layout: str,
    tier: str,
    median: float,
    recorder: PerfRecorder,
    *,
    repeats: int,
    tag_mode: bool,
) -> dict[str, Any]:
    expected = f"kernels.tier_{tier}"
    if expected not in recorder.counters:
        raise RuntimeError(
            f"cell {tag!r} requested the {tier!r} tier but never dispatched it"
        )
    return {
        **bench_run_entry(
            backend="local",
            layout=layout,
            repeats=repeats,
            elapsed_seconds_median=median,
            phase_seconds_median={
                path: recorder.phase_seconds(path) for path in recorder.phases
            },
            phase_calls={
                path: recorder.phases[path].calls for path in recorder.phases
            },
            counters=dict(recorder.counters),
            comm={"messages": 0.0, "bytes": 0.0},
        ),
        "scenario": f"{tag}:{tier}" if tag_mode else tag,
    }


def measure_spgemm_cell(
    tier: str,
    *,
    compute_bloom: bool,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    tag_mode: bool = False,
) -> dict[str, Any]:
    """One ``runs[]`` entry: rowwise SpGEMM under ``tier``."""
    a, b = _spgemm_operands(seed)
    semiring = MIN_PLUS if compute_bloom else PLUS_TIMES

    def workload():
        spgemm_local(
            a,
            b,
            semiring,
            use_scipy=False,
            compute_bloom=compute_bloom,
            kernel_tier=tier,
        )

    median, recorder = _measure(workload, repeats=repeats)
    tag = "spgemm_rmat:bloom" if compute_bloom else "spgemm_rmat"
    return _entry(
        tag, "csr", tier, median, recorder, repeats=repeats, tag_mode=tag_mode
    )


def measure_dhb_cell(
    tier: str,
    *,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    tag_mode: bool = False,
) -> dict[str, Any]:
    """One ``runs[]`` entry: whole-batch DHB insertion under ``tier``."""
    base, batch = _dhb_workload(seed)

    def workload():
        # base construction is tier-independent setup — only the batch
        # insertion is timed
        mat = DHBMatrix((DHB_ROWS, DHB_COLS))
        mat.insert_batch(*base)
        started = time.perf_counter()
        mat.insert_batch(*batch, strategy="vectorized", kernel_tier=tier)
        return time.perf_counter() - started

    median, recorder = _measure(workload, repeats=repeats)
    return _entry(
        "dhb_batch_insert",
        "dhb",
        tier,
        median,
        recorder,
        repeats=repeats,
        tag_mode=tag_mode,
    )


def build_document(
    *,
    tiers: tuple[str, ...] | None = None,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict[str, Any]:
    """Assemble the ``BENCH_kernels`` document for the requested tiers.

    ``tiers=None`` measures both tiers when numba is importable and only
    the Python oracles otherwise (the ``run_suite`` default — the suite
    must stay green on numba-free hosts).
    """
    if tiers is None:
        tiers = ("python", "compiled") if numba_available() else ("python",)
    tag_mode = len(tiers) > 1
    runs: list[dict[str, Any]] = []
    for tier in tiers:
        runs.append(
            measure_spgemm_cell(
                tier,
                compute_bloom=False,
                repeats=repeats,
                seed=seed,
                tag_mode=tag_mode,
            )
        )
        if tag_mode:
            # The Bloom fold shares its per-entry filter-build cost across
            # tiers, diluting the measured ratio — informative in the
            # combined figure, excluded from the gated single-tier
            # documents so ``--expect-speedup`` gates exactly the two
            # acceptance workloads.
            runs.append(
                measure_spgemm_cell(
                    tier,
                    compute_bloom=True,
                    repeats=repeats,
                    seed=seed,
                    tag_mode=tag_mode,
                )
            )
        runs.append(
            measure_dhb_cell(tier, repeats=repeats, seed=seed, tag_mode=tag_mode)
        )
    extras: dict[str, Any] = {
        "tiers": list(tiers),
        "numba_available": numba_available(),
        "spgemm_n": SPGEMM_N,
        "spgemm_avg_degree": SPGEMM_AVG_DEG,
        "dhb_batch": DHB_BATCH,
    }
    return bench_document(
        figure="kernels",
        title="Compiled kernel tier vs pure-Python oracles",
        seed=seed,
        profile="kernels",
        n_ranks=1,
        runs=runs,
        extras=extras,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tier",
        choices=("python", "compiled", "both", "auto"),
        default="auto",
        help="kernel tier to measure: a single tier for comparable "
        "documents, 'both' for one combined document with per-tier tags, "
        "'auto' for both-if-numba-else-python (default %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="repeats per cell; medians are reported (default %(default)s)",
    )
    parser.add_argument(
        "--out", default="bench_out", help="output directory (default %(default)s)"
    )
    parser.add_argument(
        "--filename",
        default="BENCH_kernels.json",
        help="output file name (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="base seed")
    args = parser.parse_args(argv)
    tiers: tuple[str, ...] | None
    if args.tier == "auto":
        tiers = None
    elif args.tier == "both":
        tiers = ("python", "compiled")
    else:
        tiers = (args.tier,)
    started = time.perf_counter()
    document = build_document(tiers=tiers, repeats=args.repeats, seed=args.seed)
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, args.filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {path}  ({len(document['runs'])} runs, "
        f"{time.perf_counter() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
