"""Ablation: two-phase counting-sort vs. single-phase comparison-sort routing."""

from repro.bench import ablations

from conftest import run_experiment


def test_ablation_redistribution(benchmark, profile):
    result = run_experiment(benchmark, ablations.run_redistribution_ablation, profile)
    assert {"two_phase", "single_phase"} <= set(result.column("strategy"))
