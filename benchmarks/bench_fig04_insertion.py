"""Figure 4: mean insertion performance vs. batch size."""

from repro.bench import experiments_updates

from conftest import run_experiment


def test_fig04_insertions(benchmark, profile):
    result = run_experiment(benchmark, experiments_updates.run_insertions, profile)
    ours = {
        (row[0], row[2]): row[3]
        for row in result.rows
        if row[1] == "ours"
    }
    # our dynamic structure must beat CombBLAS for the smallest batch size
    smallest = min(profile.update_batch_sizes)
    for row in result.rows:
        instance, backend, batch, time_ms = row[0], row[1], row[2], row[3]
        if backend == "combblas" and batch == smallest:
            assert time_ms > ours[(instance, batch)]
