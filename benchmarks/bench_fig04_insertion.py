"""Figure 4: mean insertion performance vs. batch size.

The protocol is a replayable scenario
(:func:`repro.bench.workloads.batched_operation_scenario`) executed via
``Scenario.replay()`` against every backend — identical batches and
scatter seeds for all systems under comparison.
"""

from repro.bench import experiments_updates

from conftest import run_experiment


def _batch_size_sensitivity(result, profile) -> tuple[float, float]:
    """Small/large batch per-nnz cost ratios, summed over instances."""
    per_nnz = {(row[0], row[1], row[2]): row[4] for row in result.rows}
    smallest = min(profile.update_batch_sizes)
    largest = max(profile.update_batch_sizes)
    ours = sum(
        per_nnz[(inst, "ours", smallest)] / per_nnz[(inst, "ours", largest)]
        for inst in profile.instances
    )
    combblas = sum(
        per_nnz[(inst, "combblas", smallest)] / per_nnz[(inst, "combblas", largest)]
        for inst in profile.instances
    )
    return combblas, ours


def test_fig04_insertions(benchmark, profile):
    result = run_experiment(benchmark, experiments_updates.run_insertions, profile)
    assert result.metadata["protocol"] == "scenario:insert"
    # The Fig. 4 message: CombBLAS rebuilds its static storage every batch,
    # so its per-non-zero cost explodes as batches shrink, while the dynamic
    # structure degrades far more gracefully.  The smoke-scale measurements
    # are sub-100µs, so a scheduler stall can corrupt a whole run: measure
    # once more before declaring a genuine regression.
    combblas_ratio, ours_ratio = _batch_size_sensitivity(result, profile)
    if not combblas_ratio > ours_ratio:
        retry = experiments_updates.run_insertions(profile)
        combblas_ratio, ours_ratio = _batch_size_sensitivity(retry, profile)
    assert combblas_ratio > ours_ratio
