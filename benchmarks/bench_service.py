#!/usr/bin/env python
"""Service benchmark: micro-batched ingestion, query latency, tenancy.

Drives the always-on :class:`repro.service.GraphService` on the ``sim``
backend and emits a schema-validated ``BENCH_service.json`` with three
kinds of cells:

``ingest@flush<F>``
    Ingest throughput versus micro-batch size: one tenant absorbs a fixed
    seeded request stream under ``flush_max_requests = F``.  Flush size 1
    degenerates to one-distributed-round-per-request (the naive baseline);
    larger micro-batches coalesce consecutive same-kind requests into
    single scenario steps, amortising redistribution.  Counters record the
    applied step count, so the round reduction is visible next to the
    wall-clock win.

``query``
    Consistent-snapshot query latency against an established graph
    (contraction queries, the app-free query every tenant supports).

``tenants@<T>``
    Tenant-count scaling: ``T`` tenants with identical independent
    workloads multiplexed over **one** persistent world, total wall-clock
    and per-tenant comm isolation counters.

CI usage (the perf-smoke service gate)::

    python benchmarks/bench_service.py --flush-size 1 \
        --out bench_out --filename BENCH_service_single.json
    python benchmarks/bench_service.py --flush-size 16 \
        --out bench_out --filename BENCH_service_micro.json
    python -m repro.perf.compare bench_out/BENCH_service_single.json \
        bench_out/BENCH_service_micro.json --expect-speedup 0.25

With a single ``--flush-size`` the document contains only the ingest cell
and its scenario tag is flush-free, so two single-size documents match run
for run under ``repro.perf.compare`` — micro-batching must beat the
one-request-per-batch baseline.  The default (``--flush-size all``) emits
the combined three-cell document — the ``service`` figure of
``benchmarks/run_suite.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Any

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.perf import bench_document, bench_run_entry
from repro.runtime import world_rank, world_size
from repro.scenarios import ReplayOptions
from repro.service import GraphService, ServiceConfig

N = 96
N_RANKS = 4
LAYOUT = "csr"
DEFAULT_FLUSH_SIZES = (1, 4, 16)
DEFAULT_TENANT_COUNTS = (1, 2, 4)
DEFAULT_REPEATS = 3
DEFAULT_SEED = 2022

#: the fixed ingest workload: requests per stream and tuples per request
N_REQUESTS = 48
REQUEST_TUPLES = 8


def _config(flush_size: int) -> ServiceConfig:
    return ServiceConfig(
        replay=ReplayOptions(n_ranks=N_RANKS, layout=LAYOUT),
        flush_max_requests=flush_size,
    )


def _stream(tenant, *, seed: int, n_requests: int = N_REQUESTS) -> None:
    """The seeded mixed request stream every ingest cell absorbs."""
    rng = np.random.default_rng(seed)
    for i in range(n_requests):
        rows = rng.integers(0, N, REQUEST_TUPLES)
        cols = rng.integers(0, N, REQUEST_TUPLES)
        if i % 8 == 7:
            tenant.delete(rows, cols, label=f"del{i}")
        else:
            tenant.insert(rows, cols, rng.random(REQUEST_TUPLES), label=f"ins{i}")
    tenant.flush()


def measure_ingest(
    flush_size: int,
    *,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    tag_mode: bool = False,
) -> dict[str, Any]:
    """One ingest-throughput cell: the stream under one micro-batch size."""
    elapsed: list[float] = []
    for _ in range(repeats + 1):  # first iteration is the warm-up
        with GraphService(backend="sim", config=_config(flush_size)) as service:
            tenant = service.create_tenant("ingest", (N, N), seed=seed)
            started = time.perf_counter()
            _stream(tenant, seed=seed)
            elapsed.append(time.perf_counter() - started)
            result = tenant.result()
    entry = bench_run_entry(
        backend="sim",
        layout=LAYOUT,
        repeats=repeats,
        elapsed_seconds_median=float(statistics.median(elapsed[1:])),
        phase_seconds_median={},
        phase_calls={},
        counters={
            "service.flush_size": float(flush_size),
            "service.requests": float(N_REQUESTS),
            "service.steps_applied": float(tenant.n_steps),
            "service.tuples": float(N_REQUESTS * REQUEST_TUPLES),
        },
        comm={
            "messages": float(result.total_comm_messages()),
            "bytes": float(result.total_comm_bytes()),
        },
    )
    entry["scenario"] = f"ingest@flush{flush_size}" if tag_mode else "ingest"
    return entry


def measure_query(
    *, repeats: int = DEFAULT_REPEATS, seed: int = DEFAULT_SEED
) -> dict[str, Any]:
    """Query-latency cell: contraction queries against a warm graph."""
    per_query: list[float] = []
    with GraphService(backend="sim", config=_config(8)) as service:
        tenant = service.create_tenant("query", (N, N), seed=seed)
        _stream(tenant, seed=seed)
        clusters = np.arange(N, dtype=np.int64) % 8
        tenant.contract(clusters, n_clusters=8)  # warm-up
        for _ in range(repeats * 4):
            started = time.perf_counter()
            tenant.contract(clusters, n_clusters=8)
            per_query.append(time.perf_counter() - started)
        result = tenant.result()
    entry = bench_run_entry(
        backend="sim",
        layout=LAYOUT,
        repeats=repeats * 4,
        elapsed_seconds_median=float(statistics.median(per_query)),
        phase_seconds_median={},
        phase_calls={},
        counters={
            "service.queries": float(len(per_query)),
            "service.steps_applied": float(tenant.n_steps),
        },
        comm={
            "messages": float(result.total_comm_messages()),
            "bytes": float(result.total_comm_bytes()),
        },
    )
    entry["scenario"] = "query"
    return entry


def measure_tenants(
    n_tenants: int,
    *,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict[str, Any]:
    """Tenant-count scaling cell: ``n_tenants`` workloads on one world."""
    elapsed: list[float] = []
    for _ in range(repeats + 1):  # first iteration is the warm-up
        with GraphService(backend="sim", config=_config(8)) as service:
            tenants = [
                service.create_tenant(f"tenant{i}", (N, N), seed=seed + i)
                for i in range(n_tenants)
            ]
            started = time.perf_counter()
            for i, tenant in enumerate(tenants):
                _stream(tenant, seed=seed + i, n_requests=N_REQUESTS // 2)
            results = [tenant.result() for tenant in tenants]
            elapsed.append(time.perf_counter() - started)
            minted = service.world.minted
    entry = bench_run_entry(
        backend="sim",
        layout=LAYOUT,
        repeats=repeats,
        elapsed_seconds_median=float(statistics.median(elapsed[1:])),
        phase_seconds_median={},
        phase_calls={},
        counters={
            "service.tenants": float(n_tenants),
            "service.minted_communicators": float(minted),
            "service.steps_applied": float(
                sum(tenant.n_steps for tenant in tenants)
            ),
        },
        comm={
            "messages": float(sum(r.total_comm_messages() for r in results)),
            "bytes": float(sum(r.total_comm_bytes() for r in results)),
        },
    )
    entry["scenario"] = f"tenants@{n_tenants}"
    return entry


def build_document(
    *,
    flush_sizes: tuple[int, ...] = DEFAULT_FLUSH_SIZES,
    tenant_counts: tuple[int, ...] = DEFAULT_TENANT_COUNTS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict[str, Any]:
    """Assemble the ``BENCH_service`` document.

    A single flush size produces a gate document (ingest cell only,
    flush-free tag — comparable run for run against another size); several
    produce the combined three-cell figure document.
    """
    tag_mode = len(flush_sizes) > 1
    runs = [
        measure_ingest(size, repeats=repeats, seed=seed, tag_mode=tag_mode)
        for size in flush_sizes
    ]
    if tag_mode:
        runs.append(measure_query(repeats=repeats, seed=seed))
        runs.extend(
            measure_tenants(count, repeats=repeats, seed=seed)
            for count in tenant_counts
        )
    extras: dict[str, Any] = {
        "flush_sizes": list(flush_sizes),
        "tenant_counts": list(tenant_counts) if tag_mode else [],
        "n_requests": N_REQUESTS,
        "request_tuples": REQUEST_TUPLES,
        "shape": [N, N],
    }
    return bench_document(
        figure="service",
        title="Always-on service: micro-batched ingestion and tenancy",
        seed=seed,
        profile="service",
        n_ranks=N_RANKS,
        runs=runs,
        extras=extras,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--flush-size",
        default="all",
        help="micro-batch size to measure, or 'all' for the combined "
        "document with per-size tags plus query/tenancy cells "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--tenants",
        default=",".join(str(count) for count in DEFAULT_TENANT_COUNTS),
        help="comma-separated tenant counts for the scaling cells "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="repeats per cell; medians are reported (default %(default)s)",
    )
    parser.add_argument(
        "--out", default="bench_out", help="output directory (default %(default)s)"
    )
    parser.add_argument(
        "--filename",
        default="BENCH_service.json",
        help="output file name (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="base seed")
    args = parser.parse_args(argv)
    if world_size() > 1:
        # The bench drives its own single-process sim worlds; under mpiexec
        # only rank 0 runs them (the others would duplicate the work).
        if world_rank() != 0:
            return 0
    flush_sizes = (
        DEFAULT_FLUSH_SIZES
        if args.flush_size == "all"
        else tuple(int(field) for field in args.flush_size.split(",") if field)
    )
    tenant_counts = tuple(int(field) for field in args.tenants.split(",") if field)
    started = time.perf_counter()
    document = build_document(
        flush_sizes=flush_sizes,
        tenant_counts=tenant_counts,
        repeats=args.repeats,
        seed=args.seed,
    )
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, args.filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {path}  ({len(document['runs'])} runs, "
        f"{time.perf_counter() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
