#!/usr/bin/env python
"""Partitioning benchmark: placement strategies under a skewed stream.

Replays the bursty R-MAT scenario (``bursty_skewed_stream``) on real
multi-process loopback worlds with each registered
:mod:`repro.runtime.partitioner` strategy and emits a schema-validated
``BENCH_partition.json`` whose per-run metrics are fully deterministic:

``comm.bytes`` / ``comm.messages``
    The world-summed *interprocess* traffic counted by
    :meth:`~repro.runtime.mpi_backend.MPIBackend.global_interprocess_comm`
    — payload bytes that actually crossed a process boundary, as opposed
    to the logical collective volume (which is placement-invariant by
    design).

``counters["partition.max_nnz_share"]``
    The heaviest process's share of the final matrix nnz under the run's
    placement — 1/world_size is perfect balance, 1.0 is total skew.

The cells use ``N_RANKS = 9`` logical ranks (a 3x3 grid) on worlds 2 and
4 deliberately: neither world size divides the grid dimension, so the
round-robin baseline shears grid columns across processes and both the
locality win (fewer cross-process bytes) and the nnz win (lower max
share under R-MAT skew) are structural, not incidental.  At world sizes
that divide the grid dimension round-robin degenerates to column
striping, which is already locality-optimal.

CI usage (the perf-smoke partition gate)::

    python benchmarks/bench_partition.py --partitioner round_robin \
        --out bench_out --filename BENCH_partition_rr.json
    python benchmarks/bench_partition.py --partitioner nnz_aware \
        --out bench_out --filename BENCH_partition_nnz.json
    python benchmarks/bench_partition.py --partitioner locality_aware \
        --out bench_out --filename BENCH_partition_loc.json
    python -m repro.perf.compare bench_out/BENCH_partition_rr.json \
        bench_out/BENCH_partition_nnz.json \
        --expect-reduction counters.partition.max_nnz_share=0.1
    python -m repro.perf.compare bench_out/BENCH_partition_rr.json \
        bench_out/BENCH_partition_loc.json --expect-reduction comm.bytes=0.2

Each strategy is gated only on the metric it optimises: nnz-aware
placement may legitimately *increase* cross-process bytes (it splits
neighbouring heavy blocks apart) and locality-aware placement may
concentrate nnz.  ``--partitioner all`` emits one combined document with
per-strategy scenario tags — the ``partition`` figure of
``benchmarks/run_suite.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Any

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.distributed.distribution import BlockDistribution
from repro.perf import bench_document, bench_run_entry
from repro.runtime import (
    REPARTITION_ENV_VAR,
    MPIBackend,
    ProcessGrid,
    available_partitioners,
    run_spmd,
    world_rank,
    world_size,
)
from repro.scenarios import SCENARIO_GENERATORS
from repro.scenarios.replay import replay

#: Logical ranks per world — a 3x3 grid; see the module docstring for why
#: the grid dimension must not divide the benchmarked world sizes.
N_RANKS = 9

SCENARIO = "bursty_skewed_stream"
DEFAULT_WORLDS = (2, 4)
DEFAULT_REPEATS = 3
DEFAULT_SEED = 2022


def measure_cell(
    partitioner: str,
    *,
    world: int,
    n_ranks: int = N_RANKS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    tag_mode: bool = False,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """One ``runs[]`` entry plus its extras: a (partitioner, world) cell.

    Replays the scenario ``repeats`` times on a threaded loopback world of
    ``world`` processes, one :class:`MPIBackend` of ``n_ranks`` logical
    ranks per process, placed by ``partitioner``.  Returns the run entry
    and an extras record (placement and per-process nnz loads).  With
    ``tag_mode`` the scenario tag carries a ``:<partitioner>`` suffix (the
    combined-document layout); without it the tag is strategy-free so two
    single-strategy documents can be matched run for run by
    ``repro.perf.compare``.
    """
    scenario = SCENARIO_GENERATORS[SCENARIO](seed=seed)

    def program(comm_obj, _world_rank: int):
        comm = MPIBackend(n_ranks, comm=comm_obj)
        result = replay(scenario, comm=comm, layout="csr", partitioner=partitioner)
        return result, comm.global_interprocess_comm(), comm.placement()

    previous = os.environ.pop(REPARTITION_ENV_VAR, None)
    try:
        elapsed: list[float] = []
        run_spmd(world, program)  # warm-up: caching and import costs
        for _ in range(repeats):
            started = time.perf_counter()
            results = run_spmd(world, program)
            elapsed.append(time.perf_counter() - started)
    finally:
        if previous is not None:
            os.environ[REPARTITION_ENV_VAR] = previous
    result, cross, placement = results[0]

    # Final-state nnz balance, computed host-side from the replay result so
    # it is exactly reproducible: map every stored entry to its logical
    # rank, then group rank nnz by the run's placement.
    grid = ProcessGrid(n_ranks)
    dist = BlockDistribution(*scenario.shape, grid)
    rows, cols, _values = result.final_a
    owners = dist.owner_of(np.asarray(rows), np.asarray(cols))
    rank_nnz = np.bincount(owners, minlength=n_ranks).astype(float)
    active = min(world, n_ranks)
    loads = np.zeros(active)
    for rank in range(n_ranks):
        loads[placement[rank]] += rank_nnz[rank]
    total = float(loads.sum())
    share = float(loads.max() / total) if total else 0.0

    entry = bench_run_entry(
        backend="mpi",
        layout="csr",
        repeats=repeats,
        elapsed_seconds_median=float(statistics.median(elapsed)),
        phase_seconds_median={},
        phase_calls={},
        counters={
            "partition.max_nnz_share": share,
            "partition.max_nnz": float(loads.max()) if total else 0.0,
            "partition.total_nnz": total,
            "partition.active_processes": float(active),
        },
        comm={
            "messages": float(cross["messages"]),
            "bytes": float(cross["bytes"]),
        },
    )
    tag = f"{SCENARIO}@w{world}"
    entry["scenario"] = f"{tag}:{partitioner}" if tag_mode else tag
    cell_extras = {
        "partitioner": partitioner,
        "world": world,
        "placement": [placement[rank] for rank in range(n_ranks)],
        "process_nnz": [float(load) for load in loads],
    }
    return entry, cell_extras


def build_document(
    *,
    partitioners: tuple[str, ...],
    worlds: tuple[int, ...] = DEFAULT_WORLDS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict[str, Any]:
    """Assemble the ``BENCH_partition`` document for the requested cells."""
    tag_mode = len(partitioners) > 1
    runs: list[dict[str, Any]] = []
    cells: list[dict[str, Any]] = []
    for world in worlds:
        for partitioner in partitioners:
            entry, cell_extras = measure_cell(
                partitioner,
                world=world,
                repeats=repeats,
                seed=seed,
                tag_mode=tag_mode,
            )
            runs.append(entry)
            cells.append(cell_extras)
    extras: dict[str, Any] = {
        "scenario": SCENARIO,
        "partitioners": list(partitioners),
        "worlds": list(worlds),
        "cells": cells,
    }
    return bench_document(
        figure="partition",
        title="Logical-rank placement strategies under a skewed stream",
        seed=seed,
        profile="partition",
        n_ranks=N_RANKS,
        runs=runs,
        extras=extras,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--partitioner",
        choices=(*available_partitioners(), "all"),
        default="all",
        help="placement strategy to measure, or 'all' for one combined "
        "document with per-strategy tags (default %(default)s)",
    )
    parser.add_argument(
        "--worlds",
        default=",".join(str(world) for world in DEFAULT_WORLDS),
        help="comma-separated loopback world sizes (default %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="repeats per cell; medians are reported (default %(default)s)",
    )
    parser.add_argument(
        "--out", default="bench_out", help="output directory (default %(default)s)"
    )
    parser.add_argument(
        "--filename",
        default="BENCH_partition.json",
        help="output file name (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="base seed")
    args = parser.parse_args(argv)
    if world_size() > 1:
        # The bench drives its own threaded loopback worlds; under mpiexec
        # only rank 0 runs them (the others would duplicate the work).
        if world_rank() != 0:
            return 0
    partitioners = (
        available_partitioners() if args.partitioner == "all" else (args.partitioner,)
    )
    worlds = tuple(int(field) for field in args.worlds.split(",") if field)
    started = time.perf_counter()
    document = build_document(
        partitioners=tuple(partitioners),
        worlds=worlds,
        repeats=args.repeats,
        seed=args.seed,
    )
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, args.filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {path}  ({len(document['runs'])} runs, "
        f"{time.perf_counter() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
