"""Shared helpers for the pytest-benchmark harness.

Every benchmark wraps one experiment driver from :mod:`repro.bench` and runs
it exactly once per invocation (``rounds=1``): a driver already aggregates
multiple batches/instances internally, and the interesting output is the
figure series it prints, not sub-millisecond timing stability.

Scale is controlled by the ``REPRO_BENCH_PROFILE`` environment variable
(``smoke`` by default, ``default`` for the numbers recorded in
EXPERIMENTS.md, ``large`` for a longer run).
"""

from __future__ import annotations

import pytest

from repro.bench import get_profile
from repro.bench.reporting import ExperimentResult, print_result


@pytest.fixture(scope="session")
def profile():
    return get_profile()


def run_experiment(benchmark, driver, *args, **kwargs) -> ExperimentResult:
    """Run a driver once under pytest-benchmark and print its figure series."""
    result = benchmark.pedantic(driver, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print_result(result)
    return result
