#!/usr/bin/env python
"""Scenario-based perf suite: emit machine-readable ``BENCH_<fig>.json``.

Replays the scenario protocols behind figures 4 (batched insertions),
8 (R-MAT construction scaling) and 10 (general dynamic SpGEMM) across a
``backend × layout`` matrix with a :class:`repro.perf.PerfRecorder`
installed — plus the ``apps`` application workloads and the ``overlap``
figure (both ``REPRO_OVERLAP`` modes of the nonblocking pipelines, via
``benchmarks/bench_overlap.py``) — and writes one schema-validated JSON
document per figure:
per-phase median seconds, kernel counters, communication volume, the git
SHA and the seed.  The documents are the input of the regression gate
``python -m repro.perf.compare`` (see ``docs/performance.md``).

Examples
--------
Smoke run (what CI's perf-smoke job executes)::

    python benchmarks/run_suite.py --smoke

Restrict the matrix or bump the repeat count::

    python benchmarks/run_suite.py --smoke --backends sim --layouts csr,dhb \
        --figs fig04,fig10 --repeats 5 --out bench_out
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Any, Callable

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.bench.config import BenchProfile, get_profile
from repro.bench.workloads import (
    batched_operation_scenario,
    construction_scenario,
    prepare_instance,
    spgemm_stream_scenario,
)
from repro.graphs import rmat_edges
from repro.perf import (
    PerfRecorder,
    bench_document,
    bench_run_entry,
    use_recorder,
    validate_bench,
)
from repro.runtime import make_communicator, world_rank
from repro.scenarios import Scenario, replay
from repro.semirings import PLUS_TIMES
from repro.sparse import DHBMatrix

DEFAULT_BACKENDS = ("sim", "mpi")
DEFAULT_LAYOUTS = ("csr", "dhb")
DEFAULT_REPEATS = 3
KNOWN_FIGS = (
    "fig04",
    "fig08",
    "fig10",
    "apps",
    "overlap",
    "partition",
    "checkpoint",
    "service",
    "kernels",
)


# ----------------------------------------------------------------------
# figure protocols
# ----------------------------------------------------------------------
def fig04_scenario(profile: BenchProfile, seed: int) -> tuple[Scenario, str]:
    """Fig. 4 protocol: batched insertions into a pre-loaded instance."""
    workload = prepare_instance(
        profile.instances[0], scale_divisor=profile.scale_divisor, seed=seed + 7
    )
    batch_per_rank = profile.update_batch_sizes[len(profile.update_batch_sizes) // 2]
    scenario = batched_operation_scenario(
        workload,
        "insert",
        n_batches=profile.batches_per_config,
        batch_total=batch_per_rank * profile.n_ranks,
        seed=seed + 17,
    )
    return scenario, "Batched insertions (Fig. 4 protocol)"


def fig08_scenario(profile: BenchProfile, seed: int) -> tuple[Scenario, str]:
    """Fig. 8 protocol: timed bulk construction of an R-MAT stream."""
    total = 1 << profile.rmat_strong_total_log2
    scale = max(8, profile.rmat_strong_total_log2 - 3)
    n_vertices, src, dst = rmat_edges(
        scale, max(1, total // (1 << scale)), seed=seed + 43
    )
    values = np.random.default_rng(seed + 47).random(src.size)
    scenario = construction_scenario(
        f"rmat-2^{profile.rmat_strong_total_log2}",
        (n_vertices, n_vertices),
        (src[:total], dst[:total], values[:total]),
        seed=seed + 53,
    )
    return scenario, "R-MAT bulk construction (Fig. 8 protocol)"


def fig10_scenario(profile: BenchProfile, seed: int) -> tuple[Scenario, str]:
    """Fig. 10 protocol: general dynamic SpGEMM under an insertion stream."""
    workload = prepare_instance(
        profile.instances[0], scale_divisor=profile.scale_divisor, seed=seed + 11
    )
    batch_per_rank = profile.spgemm_general_batch_sizes[-1]
    scenario = spgemm_stream_scenario(
        workload,
        n_batches=profile.batches_per_config,
        batch_total=batch_per_rank * profile.n_ranks,
        mode="general",
        seed=seed + 19,
    )
    return scenario, "General dynamic SpGEMM stream (Fig. 10 protocol)"


FIG_BUILDERS: dict[str, Callable[[BenchProfile, int], tuple[Scenario, str]]] = {
    "fig04": fig04_scenario,
    "fig08": fig08_scenario,
    "fig10": fig10_scenario,
}


def apps_scenarios(seed: int) -> list[Scenario]:
    """The application-workload scenarios of the ``apps`` figure.

    One scenario per application: incremental triangle counting over an
    evolving social graph, multi-source shortest paths under weighted
    churn, and the multilevel contraction pipeline — the generator-default
    sizes the differential suite also replays.
    """
    from repro.scenarios import (
        multilevel_contraction,
        road_churn_sssp,
        social_triangle_stream,
    )

    return [
        social_triangle_stream(seed=seed + 61),
        road_churn_sssp(seed=seed + 67),
        multilevel_contraction(seed=seed + 71),
    ]

#: figures whose protocol uses the paper-regime SpGEMM machine model
SPGEMM_FIGS = frozenset({"fig10"})


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def _median(values: list[float]) -> float:
    return float(statistics.median(values)) if values else 0.0


def run_config(
    scenario: Scenario,
    *,
    backend: str,
    layout: str,
    n_ranks: int,
    machine,
    repeats: int,
) -> dict[str, Any]:
    """Replay one ``backend × layout`` cell ``repeats`` times; median it."""
    elapsed: list[float] = []
    recorders: list[PerfRecorder] = []
    for _ in range(repeats):
        recorder = PerfRecorder()
        comm = make_communicator(backend, n_ranks=n_ranks, machine=machine)
        with use_recorder(recorder):
            result = replay(
                scenario,
                comm=comm,
                layout=layout,
                check_snapshots=False,
                collect_final=False,
            )
        elapsed.append(result.elapsed_modeled)
        recorders.append(recorder)
    paths = sorted({path for rec in recorders for path in rec.phases})
    phase_seconds = {
        path: _median([rec.phase_seconds(path) for rec in recorders])
        for path in paths
    }
    phase_calls = {
        path: _median(
            [rec.phases[path].calls if path in rec.phases else 0 for rec in recorders]
        )
        for path in paths
    }
    last = recorders[-1]
    return bench_run_entry(
        backend=backend,
        layout=layout,
        repeats=repeats,
        elapsed_seconds_median=_median(elapsed),
        phase_seconds_median=phase_seconds,
        phase_calls=phase_calls,
        counters=last.counters,
        comm=last.total_comm(),
        comm_categories=last.comm,
    )


def measure_dhb_insertion(profile: BenchProfile, seed: int) -> dict[str, Any]:
    """Median-of-3 comparison of DHB insertion strategies.

    Two regimes where the batched path is expected to win: bulk
    construction from empty and dense-per-row insertion batches.  Timings
    come from the instrumented ``dhb_insert`` phase of a
    :class:`PerfRecorder`, not from an external stopwatch.
    """
    rng = np.random.default_rng(seed + 71)
    # Construction regime: one large batch into an empty matrix (the
    # fig 3/8 protocol).  Dense regime: skewed batches hammering a hot
    # submatrix (~100 entries per touched row, heavy in-batch duplication)
    # on top of an existing matrix — the shape where the whole-batch
    # ``reduceat`` merge and the vectorised hit-slot combine win, as
    # opposed to one-entry-per-row scatter where the per-element loop
    # stays the right choice (and what the "auto" heuristic picks).
    n = 20000
    build_size = 100000
    batch_rows = 200
    batch_cols = 150
    batch_size = 100 * batch_rows

    def timed_insert(strategy: str, runs: Callable[[], list[tuple]]) -> float:
        samples = []
        for _ in range(3):
            # setup (matrix construction / preload) happens before the
            # recorder is installed, so only the strategy under test lands
            # in the measured dhb_insert phase
            prepared = runs()
            recorder = PerfRecorder()
            with use_recorder(recorder):
                for matrix, batch in prepared:
                    matrix.insert_batch(
                        *batch, combine=PLUS_TIMES.plus, strategy=strategy
                    )
            samples.append(recorder.phase_seconds("dhb_insert"))
        return _median(samples)

    build = (
        rng.integers(0, n, build_size),
        rng.integers(0, n, build_size),
        rng.random(build_size),
    )

    def construction_runs() -> list[tuple]:
        return [(DHBMatrix((n, n)), build)]

    dense_batches = [
        (
            rng.integers(0, batch_rows, batch_size),
            rng.integers(0, batch_cols, batch_size),
            rng.random(batch_size),
        )
        for _ in range(3)
    ]

    def dense_runs() -> list[tuple]:
        matrix = DHBMatrix((n, n))
        matrix.insert_batch(*build, combine=PLUS_TIMES.plus)
        return [(matrix, batch) for batch in dense_batches]

    out: dict[str, Any] = {}
    for regime, runs in (("construction", construction_runs), ("dense_batches", dense_runs)):
        per_element = timed_insert("per_element", runs)
        batched = timed_insert("auto", runs)
        out[regime] = {
            "per_element_seconds": per_element,
            "batched_seconds": batched,
            "speedup": per_element / batched if batched else float("inf"),
        }
    return out


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def run_suite(
    *,
    profile_name: str | None = None,
    figs: tuple[str, ...] = KNOWN_FIGS,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    layouts: tuple[str, ...] = DEFAULT_LAYOUTS,
    repeats: int = DEFAULT_REPEATS,
    out_dir: str = "bench_out",
    seed: int = 0,
) -> list[str]:
    """Run the requested figures and write their BENCH documents.

    ``profile_name=None`` defers to ``REPRO_BENCH_PROFILE`` (default
    ``smoke``).  Returns the list of written file paths.
    """
    profile = get_profile(profile_name)
    os.makedirs(out_dir, exist_ok=True)
    written: list[str] = []
    for fig in figs:
        started = time.perf_counter()
        if fig == "overlap":
            # Delegates to benchmarks/bench_overlap.py: one run entry per
            # (workload, world, overlap-mode) cell, both modes in one
            # document.  The profile/layout knobs do not apply — the
            # workloads pin their own sizes and the overlap-regime
            # machine; the per-mode single-document CI gate is driven by
            # bench_overlap.py directly (see its docstring).
            sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
            from bench_overlap import build_document as build_overlap_document

            backend = backends[0] if backends else "sim"
            document = build_overlap_document(
                modes=("off", "on"), backend=backend, repeats=repeats, seed=seed
            )
            if _write_document(document, fig, out_dir, started, len(document["runs"])):
                written.append(os.path.join(out_dir, f"BENCH_{fig}.json"))
            continue
        if fig == "partition":
            # Delegates to benchmarks/bench_partition.py: one run entry per
            # (partitioner, loopback world) cell of the bursty R-MAT
            # scenario, all strategies in one document.  The profile,
            # backend and layout knobs do not apply — the bench pins its
            # own world sizes and logical rank count; the per-strategy
            # single-document CI gate is driven by bench_partition.py
            # directly (see its docstring).
            sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
            from bench_partition import build_document as build_partition_document
            from repro.runtime import available_partitioners

            document = build_partition_document(
                partitioners=tuple(available_partitioners()),
                repeats=repeats,
                seed=seed if seed else 2022,
            )
            if _write_document(document, fig, out_dir, started, len(document["runs"])):
                written.append(os.path.join(out_dir, f"BENCH_{fig}.json"))
            continue
        if fig == "kernels":
            # Delegates to benchmarks/bench_kernels.py: the three hot
            # local kernels behind the REPRO_KERNEL_TIER switch, measured
            # per tier with per-tier scenario tags.  On numba-free hosts
            # only the pure-Python oracles are measured (the compiled
            # column would just re-run the shimmed Python code); the
            # gated two-document comparison is driven by bench_kernels.py
            # directly in the CI numba leg (see its docstring).
            sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
            from bench_kernels import build_document as build_kernels_document

            document = build_kernels_document(
                repeats=repeats, seed=seed if seed else 2022
            )
            if _write_document(document, fig, out_dir, started, len(document["runs"])):
                written.append(os.path.join(out_dir, f"BENCH_{fig}.json"))
            continue
        if fig == "checkpoint":
            # Delegates to benchmarks/bench_checkpoint.py: one run entry
            # per (backend, layout) kill-and-recover drill reporting
            # snapshot size, save/restore latency and recovery traffic.
            # The profile knob does not apply — the drill pins its own
            # trace and kill point; every cell is round-trip verified
            # against the uninterrupted reference before it is reported.
            sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
            from bench_checkpoint import build_document as build_checkpoint_document
            from repro.runtime.mpi_backend import world_size

            # Crash recovery is an in-process protocol (the mpiexec durable
            # drill is tools/mpi_restore_drill.py), so under a real
            # multi-process launch every rank measures its own in-process
            # drill on the sim backend instead of the shared COMM_WORLD.
            drill_backends = ("sim",) if world_size() > 1 else tuple(backends)
            document = build_checkpoint_document(
                backends=drill_backends,
                layouts=tuple(layouts),
                repeats=repeats,
                seed=seed if seed else 2022,
            )
            if _write_document(document, fig, out_dir, started, len(document["runs"])):
                written.append(os.path.join(out_dir, f"BENCH_{fig}.json"))
            continue
        if fig == "service":
            # Delegates to benchmarks/bench_service.py: ingest throughput
            # versus micro-batch size, query latency and tenant-count
            # scaling of the always-on service, all cells in one document.
            # The profile, backend and layout knobs do not apply — the
            # bench pins its own workload on the sim backend; the
            # single-flush-size CI gate is driven by bench_service.py
            # directly (see its docstring).
            sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
            from bench_service import build_document as build_service_document

            document = build_service_document(
                repeats=repeats,
                seed=seed if seed else 2022,
            )
            if _write_document(document, fig, out_dir, started, len(document["runs"])):
                written.append(os.path.join(out_dir, f"BENCH_{fig}.json"))
            continue
        if fig == "apps":
            # One run entry per (application scenario, backend); the apps
            # maintain their own dynamic state, so the layout knob does not
            # apply and every entry is tagged with its scenario instead.
            if set(layouts) != {"csr"}:
                print(
                    "note: the apps figure ignores --layouts (the "
                    "applications manage their own dynamic storage); "
                    "runs are tagged layout 'csr'"
                )
            scenarios = apps_scenarios(seed)
            title = "Dynamic graph analytics applications"
            runs = []
            for scenario in scenarios:
                for backend in backends:
                    entry = run_config(
                        scenario,
                        backend=backend,
                        layout="csr",
                        n_ranks=profile.n_ranks,
                        machine=profile.machine,
                        repeats=repeats,
                    )
                    entry["scenario"] = scenario.name
                    runs.append(entry)
            extras: dict[str, Any] = {
                "scenarios": [scenario.name for scenario in scenarios]
            }
            document = bench_document(
                figure=fig,
                title=title,
                seed=seed,
                profile=profile.name,
                n_ranks=profile.n_ranks,
                runs=runs,
                extras=extras,
            )
            if _write_document(document, fig, out_dir, started, len(runs)):
                written.append(os.path.join(out_dir, f"BENCH_{fig}.json"))
            continue
        builder = FIG_BUILDERS.get(fig)
        if builder is None:
            raise ValueError(f"unknown figure {fig!r} (known: {', '.join(KNOWN_FIGS)})")
        scenario, title = builder(profile, seed)
        machine = profile.spgemm_machine if fig in SPGEMM_FIGS else profile.machine
        runs = [
            run_config(
                scenario,
                backend=backend,
                layout=layout,
                n_ranks=profile.n_ranks,
                machine=machine,
                repeats=repeats,
            )
            for backend in backends
            for layout in layouts
        ]
        extras = {"scenario": scenario.name}
        if fig == "fig04":
            extras["dhb_insertion"] = measure_dhb_insertion(profile, seed)
        document = bench_document(
            figure=fig,
            title=title,
            seed=seed,
            profile=profile.name,
            n_ranks=profile.n_ranks,
            runs=runs,
            extras=extras,
        )
        if _write_document(document, fig, out_dir, started, len(runs)):
            written.append(os.path.join(out_dir, f"BENCH_{fig}.json"))
    return written


def _write_document(
    document: dict[str, Any], fig: str, out_dir: str, started: float, n_runs: int
) -> bool:
    """Validate and write one BENCH document; returns True when written.

    Under a multi-process launch every process replays the protocols (one
    SPMD program), but only world rank 0 writes the BENCH documents — the
    measured comm volume is identical on every rank by construction, and
    concurrent writers would race on the files.
    """
    validate_bench(document)
    if world_rank() != 0:
        return False
    path = os.path.join(out_dir, f"BENCH_{fig}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}  ({n_runs} runs, {time.perf_counter() - started:.1f}s)")
    return True


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="force the smoke profile (alias of --profile smoke)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="benchmark profile (default: REPRO_BENCH_PROFILE or smoke)",
    )
    parser.add_argument(
        "--figs",
        default=",".join(KNOWN_FIGS),
        help=f"comma-separated figures to run (default: {','.join(KNOWN_FIGS)})",
    )
    parser.add_argument(
        "--backends",
        default=",".join(DEFAULT_BACKENDS),
        help=f"comma-separated communicator backends (default: {','.join(DEFAULT_BACKENDS)})",
    )
    parser.add_argument(
        "--layouts",
        default=",".join(DEFAULT_LAYOUTS),
        help=f"comma-separated local layouts (default: {','.join(DEFAULT_LAYOUTS)})",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="replays per matrix cell; medians are reported (default %(default)s)",
    )
    parser.add_argument(
        "--out", default="bench_out", help="output directory (default %(default)s)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    args = parser.parse_args(argv)
    # None defers to REPRO_BENCH_PROFILE (then "smoke") inside get_profile
    profile_name = "smoke" if args.smoke else args.profile
    try:
        written = run_suite(
            profile_name=profile_name,
            figs=tuple(f.strip() for f in args.figs.split(",") if f.strip()),
            backends=tuple(b.strip() for b in args.backends.split(",") if b.strip()),
            layouts=tuple(l.strip() for l in args.layouts.split(",") if l.strip()),
            repeats=args.repeats,
            out_dir=args.out,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        # KeyError: unknown profile (get_profile); ValueError: unknown figure
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}")
        return 2
    print(f"{len(written)} BENCH document(s) written to {args.out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
