"""Figure 7: breakdown of insertion running time."""

from repro.runtime import StatCategory
from repro.bench import experiments_updates

from conftest import run_experiment


def test_fig07_insert_breakdown(benchmark, profile):
    result = run_experiment(benchmark, experiments_updates.run_insert_breakdown, profile)
    assert set(result.column("phase")) == set(StatCategory.INSERTION_BREAKDOWN)
