"""Table I: instance catalogue and surrogate sizes."""

from repro.bench import experiments_updates

from conftest import run_experiment


def test_table1_instances(benchmark, profile):
    result = run_experiment(benchmark, experiments_updates.run_table1, profile)
    assert len(result.rows) == 12
