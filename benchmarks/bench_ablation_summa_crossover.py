"""Ablation: dynamic algorithm vs. SUMMA as update density grows."""

from repro.bench import ablations

from conftest import run_experiment


def test_ablation_summa_crossover(benchmark, profile):
    result = run_experiment(benchmark, ablations.run_summa_crossover_ablation, profile)
    speedups = result.column("dynamic_speedup")
    # the advantage must shrink (or invert) as the update matrix densifies
    assert speedups[0] >= speedups[-1] * 0.5
