"""Figure 2/3: matrix construction performance relative to CombBLAS."""

from repro.bench import experiments_updates

from conftest import run_experiment


def test_fig03_construction(benchmark, profile):
    result = run_experiment(benchmark, experiments_updates.run_construction, profile)
    assert set(result.column("backend")) >= {"ours", "combblas"}
    assert all(t > 0 for t in result.column("time_ms"))
