"""Ablation: DHB dynamic blocks vs. static rebuild per batch."""

from repro.bench import ablations

from conftest import run_experiment


def test_ablation_dynamic_storage(benchmark, profile):
    result = run_experiment(benchmark, ablations.run_dynamic_storage_ablation, profile)
    assert {"dhb_dynamic", "static_rebuild"} == set(result.column("storage"))
