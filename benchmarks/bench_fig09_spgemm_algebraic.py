"""Figure 9: dynamic SpGEMM, algebraic case."""

from repro.bench import experiments_spgemm

from conftest import run_experiment


def test_fig09_spgemm_algebraic(benchmark, profile):
    result = run_experiment(benchmark, experiments_spgemm.run_spgemm_algebraic, profile)
    rows = result.rows
    smallest = min(profile.spgemm_batch_sizes)
    ours = {r[2]: r[3] for r in rows if r[1] == "ours"}
    combblas = {r[2]: r[3] for r in rows if r[1] == "combblas"}
    # the dynamic algorithm should win for the smallest (most hypersparse)
    # batch; allow a small tolerance at smoke scale where fixed overheads
    # dominate.
    assert ours[smallest] < combblas[smallest] * (1.5 if profile.name == "smoke" else 1.0)
