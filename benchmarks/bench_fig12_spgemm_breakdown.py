"""Figure 12: breakdown of the dynamic SpGEMM running time."""

from repro.runtime import StatCategory
from repro.bench import experiments_spgemm

from conftest import run_experiment


def test_fig12_spgemm_breakdown(benchmark, profile):
    result = run_experiment(benchmark, experiments_spgemm.run_spgemm_breakdown, profile)
    assert set(result.column("phase")) == set(StatCategory.SPGEMM_BREAKDOWN)
