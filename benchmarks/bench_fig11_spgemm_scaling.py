"""Figure 11: weak scalability of the dynamic SpGEMM (algebraic case)."""

from repro.bench import experiments_spgemm

from conftest import run_experiment


def test_fig11_spgemm_weak_scaling(benchmark, profile):
    result = run_experiment(benchmark, experiments_spgemm.run_spgemm_weak_scaling, profile)
    assert list(result.column("n_ranks")) == list(profile.scaling_ranks)
