#!/usr/bin/env python
"""Application-workload benchmark: emit ``BENCH_apps.json`` via run_suite.

Replays the three application scenarios — incremental triangle counting
over an evolving social graph, multi-source shortest paths under weighted
churn, and the multilevel contraction pipeline — across the requested
communicator backends with the perf instrumentation active, and writes one
schema-validated ``BENCH_apps.json`` document (one ``runs[]`` entry per
scenario × backend, tagged with the scenario name; per-phase medians
include the ``app_*`` phases the applications record).

This is a thin front-end over ``benchmarks/run_suite.py`` restricted to
the ``apps`` figure; all of run_suite's options apply::

    python benchmarks/bench_apps.py --smoke
    python benchmarks/bench_apps.py --backends sim --repeats 5 --out bench_out
"""

from __future__ import annotations

import sys

from run_suite import main as run_suite_main


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; forwards to run_suite with the ``apps`` figure."""
    argv = list(sys.argv[1:] if argv is None else argv)
    return run_suite_main(argv + ["--figs", "apps"])


if __name__ == "__main__":
    raise SystemExit(main())
