"""Figure 10: dynamic SpGEMM, general case."""

from repro.bench import experiments_spgemm

from conftest import run_experiment


def test_fig10_spgemm_general(benchmark, profile):
    result = run_experiment(benchmark, experiments_spgemm.run_spgemm_general, profile)
    assert {"ours", "combblas"} <= set(result.column("backend"))
    assert all(t > 0 for t in result.column("mean_time_ms"))
    # Note: at the scaled-down surrogate sizes the masked recomputation of
    # Algorithm 2 is dominated by per-call interpreter overhead and does not
    # necessarily beat a from-scratch SUMMA recompute; EXPERIMENTS.md
    # discusses this deviation from the paper's Figure 10.  The series is
    # still produced so the trend with batch size can be inspected.
