"""Figure 6: weak scalability of insertions (scenario-replay protocol)."""

from repro.bench import experiments_updates

from conftest import run_experiment


def test_fig06_weak_scaling(benchmark, profile):
    result = run_experiment(benchmark, experiments_updates.run_insert_weak_scaling, profile)
    assert result.metadata["protocol"] == "scenario:insert"
    assert list(result.column("n_ranks")) == list(profile.scaling_ranks)
