#!/usr/bin/env python
"""Overlap benchmark: nonblocking pipelines vs their blocking schedules.

Measures the two broadcast-pipelined protocols behind the overlap
optimisation (``REPRO_OVERLAP``, see ``docs/performance.md``) with the
pipeline enabled and disabled, and emits a schema-validated
``BENCH_overlap.json``:

``summa``
    The static SUMMA SpGEMM at fixed problem size per rank — the Fig. 11
    scaling protocol.  The double-buffered schedule posts round ``k+1``'s
    row/column broadcasts before round ``k``'s local multiplies.

``update_bcast``
    A general-mode dynamic SpGEMM update stream — the Fig. 4 style
    update-broadcast protocol.  Each batch recomputes ``C`` with the
    affected-row (``A^R``) broadcasts pipelined across SUMMA rounds.

Workloads run on the *overlap-regime* machine model: the paper-regime
calibration (see ``repro.bench.config``) with the latency/bandwidth terms
scaled a further ``OVERLAP_COMM_SCALE``x, so the broadcast volume the
pipelines hide is a first-order share of the simulated elapsed time, as
it is at the paper's scale.  Results are byte-identical between the two
modes by construction; the differential suite asserts that separately.

CI usage (the perf-smoke overlap gate)::

    REPRO_OVERLAP=off python benchmarks/bench_overlap.py --out bench_out \
        --filename BENCH_overlap_off.json
    REPRO_OVERLAP=on  python benchmarks/bench_overlap.py --out bench_out \
        --filename BENCH_overlap_on.json
    python -m repro.perf.compare bench_out/BENCH_overlap_off.json \
        bench_out/BENCH_overlap_on.json --expect-speedup 0.2

``--mode both`` instead emits a single document with one run entry per
(workload, world, mode) — the ``overlap`` figure of
``benchmarks/run_suite.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Any

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.bench.config import paper_regime_machine
from repro.core.api import DynamicProduct, UpdateBatch
from repro.core.summa import summa_spgemm
from repro.distributed import DynamicDistMatrix
from repro.distributed.dist_matrix import StaticDistMatrix
from repro.perf import PerfRecorder, bench_document, bench_run_entry, use_recorder
from repro.runtime import (
    OVERLAP_ENV_VAR,
    MachineModel,
    ProcessGrid,
    make_communicator,
    world_rank,
)
from repro.semirings import PLUS_TIMES

#: Extra factor on the paper-regime latency/bandwidth terms; chosen so the
#: pipelined broadcasts are a first-order share of the simulated elapsed
#: time on the down-scaled surrogate workloads (see the module docstring).
OVERLAP_COMM_SCALE = 4

#: The (workload, world) cells of the default document.  The CI gate
#: requires a >= 20% simulated speedup on every cell, so only cells with
#: robust headroom are gated by default; ``--worlds``/``--workloads``
#: widen the matrix for exploratory runs.
DEFAULT_CELLS = (("summa", 4), ("summa", 16), ("update_bcast", 16))

DEFAULT_REPEATS = 5
DEFAULT_SEED = 0


def overlap_regime_machine() -> MachineModel:
    """Paper-regime machine with comm scaled ``OVERLAP_COMM_SCALE``x."""
    base = paper_regime_machine()
    return MachineModel(
        alpha=base.alpha * OVERLAP_COMM_SCALE,
        beta=base.beta * OVERLAP_COMM_SCALE,
        intra_node_alpha=base.intra_node_alpha * OVERLAP_COMM_SCALE,
        intra_node_beta=base.intra_node_beta * OVERLAP_COMM_SCALE,
    )


def _random_tuples(n: int, nnz: int, seed: int):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, n, nnz),
        rng.integers(0, n, nnz),
        rng.random(nnz),
    )


def _run_summa(comm, n_ranks: int, seed: int) -> float:
    """One repeat of the Fig. 11 protocol; returns the elapsed window."""
    grid = ProcessGrid(n_ranks)
    n, nnz = 2000, 2500 * n_ranks
    a = StaticDistMatrix.from_tuples(
        comm, grid, (n, n), {0: _random_tuples(n, nnz, seed + 1)},
        PLUS_TIMES, layout="csr",
    )
    b = StaticDistMatrix.from_tuples(
        comm, grid, (n, n), {0: _random_tuples(n, nnz, seed + 2)},
        PLUS_TIMES, layout="csr",
    )
    start = comm.elapsed()
    summa_spgemm(comm, grid, a, b)
    return comm.elapsed() - start


def _run_update_bcast(comm, n_ranks: int, seed: int) -> float:
    """One repeat of the Fig. 4 style protocol; returns the elapsed window.

    Dense ``A`` against a very sparse ``B`` keeps the reduce volume (the
    non-pipelined share) small relative to the pipelined ``A^R``
    broadcasts, matching the broadcast-bound regime of the paper's
    update-heavy experiments.
    """
    grid = ProcessGrid(n_ranks)
    n, nnz_a, nnz_b, nnz_upd, batches = 3000, 400000, 3000, 20000, 2
    a = DynamicDistMatrix.from_tuples(
        comm, grid, (n, n), {0: _random_tuples(n, nnz_a, seed + 1)}, PLUS_TIMES
    )
    b = DynamicDistMatrix.from_tuples(
        comm, grid, (n, n), {0: _random_tuples(n, nnz_b, seed + 2)}, PLUS_TIMES
    )
    product = DynamicProduct(comm, grid, a, b, mode="general")
    start = comm.elapsed()
    for index in range(batches):
        rows, cols, values = _random_tuples(n, nnz_upd, seed + 7 + index)
        batch = UpdateBatch.from_global(
            (n, n), rows, cols, values, n_ranks, kind="insert",
            seed=seed + 13 + index,
        )
        product.apply_updates(a_batch=batch)
    return comm.elapsed() - start


_PROTOCOLS = {
    "summa": _run_summa,
    "update_bcast": _run_update_bcast,
}


def measure_cell(
    workload: str,
    *,
    mode: str,
    world: int,
    backend: str = "sim",
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    tag_mode: bool = False,
) -> dict[str, Any]:
    """One ``runs[]`` entry: a (workload, world) cell under one mode.

    ``mode`` ("on"/"off") is forced through ``REPRO_OVERLAP`` for the
    duration of the measurement and restored afterwards.  With
    ``tag_mode`` the run's scenario tag carries a ``:on``/``:off`` suffix
    (the combined-document layout); without it the tag is mode-free so
    two single-mode documents can be matched run for run by
    ``repro.perf.compare``.
    """
    protocol = _PROTOCOLS[workload]
    previous = os.environ.get(OVERLAP_ENV_VAR)
    os.environ[OVERLAP_ENV_VAR] = mode
    try:
        elapsed: list[float] = []
        recorders: list[PerfRecorder] = []
        machine = overlap_regime_machine()
        # warm-up: the first replay pays numba/scipy caching and branch
        # warm-up costs that would otherwise skew the measured kernels
        comm = make_communicator(backend, n_ranks=world, machine=machine)
        protocol(comm, world, seed)
        for _ in range(repeats):
            recorder = PerfRecorder()
            comm = make_communicator(backend, n_ranks=world, machine=machine)
            with use_recorder(recorder):
                elapsed.append(protocol(comm, world, seed))
            recorders.append(recorder)
    finally:
        if previous is None:
            os.environ.pop(OVERLAP_ENV_VAR, None)
        else:
            os.environ[OVERLAP_ENV_VAR] = previous
    last = recorders[-1]
    paths = sorted({path for rec in recorders for path in rec.phases})
    entry = bench_run_entry(
        backend=backend,
        layout="csr",
        repeats=repeats,
        elapsed_seconds_median=float(statistics.median(elapsed)),
        phase_seconds_median={
            path: float(
                statistics.median([rec.phase_seconds(path) for rec in recorders])
            )
            for path in paths
        },
        phase_calls={
            path: float(
                statistics.median(
                    [
                        rec.phases[path].calls if path in rec.phases else 0
                        for rec in recorders
                    ]
                )
            )
            for path in paths
        },
        counters=last.counters,
        comm=last.total_comm(),
        comm_categories=last.comm,
    )
    tag = f"{workload}@p{world}"
    entry["scenario"] = f"{tag}:{mode}" if tag_mode else tag
    return entry


def build_document(
    *,
    modes: tuple[str, ...],
    cells: tuple[tuple[str, int], ...] = DEFAULT_CELLS,
    backend: str = "sim",
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict[str, Any]:
    """Assemble the ``BENCH_overlap`` document for the requested modes."""
    tag_mode = len(modes) > 1
    runs = [
        measure_cell(
            workload,
            mode=mode,
            world=world,
            backend=backend,
            repeats=repeats,
            seed=seed,
            tag_mode=tag_mode,
        )
        for workload, world in cells
        for mode in modes
    ]
    extras: dict[str, Any] = {
        "modes": list(modes),
        "comm_scale": OVERLAP_COMM_SCALE,
        "cells": [f"{workload}@p{world}" for workload, world in cells],
    }
    return bench_document(
        figure="overlap",
        title="Compute/communication overlap (nonblocking pipelines)",
        seed=seed,
        profile="overlap",
        n_ranks=max(world for _, world in cells),
        runs=runs,
        extras=extras,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=("on", "off", "both"),
        default=None,
        help="overlap mode(s) to measure (default: the current "
        f"{OVERLAP_ENV_VAR} setting, or 'both' when unset)",
    )
    parser.add_argument(
        "--backend", default="sim", help="communicator backend (default sim)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="repeats per cell; medians are reported (default %(default)s)",
    )
    parser.add_argument(
        "--out", default="bench_out", help="output directory (default %(default)s)"
    )
    parser.add_argument(
        "--filename",
        default="BENCH_overlap.json",
        help="output file name (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="base seed")
    args = parser.parse_args(argv)
    mode = args.mode
    if mode is None:
        mode = os.environ.get(OVERLAP_ENV_VAR) or "both"
    modes = ("off", "on") if mode == "both" else (mode,)
    started = time.perf_counter()
    document = build_document(
        modes=modes, backend=args.backend, repeats=args.repeats, seed=args.seed
    )
    if world_rank() != 0:
        return 0
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, args.filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {path}  ({len(document['runs'])} runs, "
        f"{time.perf_counter() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
