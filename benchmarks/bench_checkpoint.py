#!/usr/bin/env python
"""Checkpoint/restore benchmark: snapshot cost and recovery traffic.

For each (backend, layout) cell the bench replays the dynamic-SpGEMM
trace (``mixed_update_multiply`` — the richest state: matrix, static
operand, maintained product) through a checkpointed kill-and-recover
drill and reports the durable-snapshot economics as counters of a
schema-validated ``BENCH_checkpoint.json``:

``counters["checkpoint.snapshot_bytes"]``
    Size of the versioned ``.npz`` snapshot file on disk.

``counters["checkpoint.save_seconds"]`` / ``checkpoint.restore_seconds``
    Median wall-clock latency of :func:`~repro.scenarios.save_snapshot`
    (flatten + compress + write) and :func:`~repro.scenarios.load_snapshot`
    (read + schema check + rebuild) over ``--repeats`` repetitions.

``counters["checkpoint.recovery_bytes"]`` / ``checkpoint.recovery_messages``
    The traffic the drill charged to the ``recovery`` category while
    shipping snapshot blocks back into the rebuilt world — the byte cost
    of one crash at the drill's kill point.

Every cell also *verifies* the fault-tolerance contract: the recovered
run's final tuples and non-recovery communication signature must be
byte-identical to the uninterrupted reference, and the process exits
non-zero on any mismatch — so the perf-smoke CI leg doubles as a
round-trip gate.

CI usage (the perf-smoke checkpoint gate)::

    python benchmarks/bench_checkpoint.py --out bench_out
    python -m repro.perf.schema bench_out/BENCH_checkpoint.json
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
import warnings
from typing import Any

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.perf import bench_document, bench_run_entry
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.scenarios import (
    REPLAY_LAYOUTS,
    SCENARIO_GENERATORS,
    CheckpointStore,
    load_snapshot,
    replay,
    save_snapshot,
    with_checkpoint,
    with_crash,
)

SCENARIO = "mixed_update_multiply"
CHECKPOINT_AT = 3
CRASH_AT = 5
DEFAULT_BACKENDS = ("sim", "mpi")
DEFAULT_REPEATS = 3
DEFAULT_SEED = 2022
N_RANKS = 4


class RoundTripMismatch(RuntimeError):
    """The recovered run diverged from the uninterrupted reference."""


def _check_identical(reference, recovered, *, what: str) -> None:
    for a, b in zip(reference.final_a, recovered.final_a):
        if not np.array_equal(a, b):
            raise RoundTripMismatch(f"{what}: final tuples diverged after restore")
    signature = dict(recovered.comm_signature())
    signature.pop("recovery", None)
    if signature != dict(reference.comm_signature()):
        raise RoundTripMismatch(f"{what}: non-recovery comm volume diverged")


def measure_cell(
    *,
    backend: str,
    layout: str,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict[str, Any]:
    """One ``runs[]`` entry: a (backend, layout) kill-and-recover drill."""
    scenario = SCENARIO_GENERATORS[SCENARIO](seed=seed)
    base = with_checkpoint(scenario, at=CHECKPOINT_AT)
    drill = with_crash(base, at=CRASH_AT)

    with warnings.catch_warnings():
        # the emulated-mpi backend warns once when mpi4py is absent
        warnings.simplefilter("ignore", RuntimeWarning)
        reference = replay(base, backend=backend, n_ranks=N_RANKS, layout=layout)
        elapsed: list[float] = []
        with tempfile.TemporaryDirectory() as tmp_dir:
            store = CheckpointStore(tmp_dir)
            started = time.perf_counter()
            recovered = replay(
                drill,
                backend=backend,
                n_ranks=N_RANKS,
                layout=layout,
                checkpoint_store=store,
                faults=FaultInjector(FaultPlan()),
                on_crash="restore",
            )
            elapsed.append(time.perf_counter() - started)
            _check_identical(reference, recovered, what=f"{backend}/{layout}")

            snapshot_path = store._path("default", 0)
            snapshot_bytes = os.path.getsize(snapshot_path)
            snapshot = store.load("default", 0)
            save_times: list[float] = []
            load_times: list[float] = []
            for _ in range(max(repeats, 1)):
                started = time.perf_counter()
                save_snapshot(snapshot_path, snapshot)
                save_times.append(time.perf_counter() - started)
                started = time.perf_counter()
                load_snapshot(snapshot_path)
                load_times.append(time.perf_counter() - started)

    recovery = recovered.comm_stats.get("recovery", {})
    entry = bench_run_entry(
        backend=backend,
        layout=layout,
        repeats=repeats,
        elapsed_seconds_median=float(statistics.median(elapsed)),
        phase_seconds_median={},
        phase_calls={},
        counters={
            "checkpoint.snapshot_bytes": float(snapshot_bytes),
            "checkpoint.save_seconds": float(statistics.median(save_times)),
            "checkpoint.restore_seconds": float(statistics.median(load_times)),
            "checkpoint.recovery_bytes": float(recovery.get("bytes", 0)),
            "checkpoint.recovery_messages": float(recovery.get("messages", 0)),
        },
        comm={
            "messages": float(recovered.total_comm_messages()),
            "bytes": float(recovered.total_comm_bytes()),
        },
    )
    entry["scenario"] = f"{SCENARIO}@kill{CRASH_AT}"
    return entry


def build_document(
    *,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    layouts: tuple[str, ...] = REPLAY_LAYOUTS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> dict[str, Any]:
    """Assemble the ``BENCH_checkpoint`` document for the requested cells."""
    runs = [
        measure_cell(backend=backend, layout=layout, repeats=repeats, seed=seed)
        for backend in backends
        for layout in layouts
    ]
    extras: dict[str, Any] = {
        "scenario": SCENARIO,
        "checkpoint_at": CHECKPOINT_AT,
        "crash_at": CRASH_AT,
        "round_trip_verified": True,
    }
    return bench_document(
        figure="checkpoint",
        title="Checkpoint/restore cost and crash-recovery traffic",
        seed=seed,
        profile="checkpoint",
        n_ranks=N_RANKS,
        runs=runs,
        extras=extras,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backends",
        default=",".join(DEFAULT_BACKENDS),
        help="comma-separated backends to measure (default %(default)s)",
    )
    parser.add_argument(
        "--layouts",
        default=",".join(REPLAY_LAYOUTS),
        help="comma-separated layouts to measure (default %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="save/load timing repeats; medians are reported (default %(default)s)",
    )
    parser.add_argument(
        "--out", default="bench_out", help="output directory (default %(default)s)"
    )
    parser.add_argument(
        "--filename",
        default="BENCH_checkpoint.json",
        help="output file name (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="base seed")
    args = parser.parse_args(argv)
    backends = tuple(field for field in args.backends.split(",") if field)
    layouts = tuple(field for field in args.layouts.split(",") if field)
    started = time.perf_counter()
    try:
        document = build_document(
            backends=backends, layouts=layouts, repeats=args.repeats, seed=args.seed
        )
    except RoundTripMismatch as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, args.filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {path}  ({len(document['runs'])} runs, "
        f"{time.perf_counter() - started:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
