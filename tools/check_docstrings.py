#!/usr/bin/env python
"""AST-based docstring check for the public API (a tiny pydocstyle).

Asserts that every public symbol — module, top-level class/function,
public method — in the given files (or packages, walked recursively) has
a docstring.  Private names (leading underscore), ``__dunder__`` methods
other than ``__init__`` on public classes, and bodies consisting solely of
``...`` (protocol stubs are still required to carry docstrings — only
property setters are exempt) are handled as documented below.  Exit code 1
lists every offender; used by the CI docs job.

    python tools/check_docstrings.py src/repro/core/api.py src/repro/perf
"""

from __future__ import annotations

import ast
import os
import sys


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in_class(node: ast.ClassDef, path: str) -> list[str]:
    errors = []
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(item.name) and item.name != "__init__":
                continue
            if item.name == "__init__":
                # documented either on the class or on __init__ itself
                if ast.get_docstring(node) or ast.get_docstring(item):
                    continue
            # property setters restate the getter's contract
            if any(
                isinstance(dec, ast.Attribute) and dec.attr == "setter"
                for dec in item.decorator_list
            ):
                continue
            if not ast.get_docstring(item):
                errors.append(
                    f"{path}:{item.lineno}: method "
                    f"{node.name}.{item.name} lacks a docstring"
                )
    return errors


def check_file(path: str) -> list[str]:
    """Missing-docstring messages for one Python file."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    errors: list[str] = []
    if not ast.get_docstring(tree):
        errors.append(f"{path}:1: module lacks a docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and not ast.get_docstring(node):
                errors.append(
                    f"{path}:{node.lineno}: function {node.name} lacks a docstring"
                )
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if not ast.get_docstring(node):
                errors.append(
                    f"{path}:{node.lineno}: class {node.name} lacks a docstring"
                )
            errors.extend(_missing_in_class(node, path))
    return errors


def _expand(targets: list[str]) -> list[str]:
    files: list[str] = []
    for target in targets:
        if os.path.isdir(target):
            for root, _dirs, names in os.walk(target):
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            files.append(target)
    return files


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    targets = list(sys.argv[1:] if argv is None else argv)
    if not targets:
        print("usage: python tools/check_docstrings.py <file-or-package> ...")
        return 2
    errors: list[str] = []
    files = _expand(targets)
    for path in files:
        if not os.path.exists(path):
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error)
    print(f"checked {len(files)} file(s): {len(errors)} missing docstring(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
