#!/usr/bin/env python
"""Fail on dead intra-repo links in the markdown docs.

Scans the given markdown files (default: ``README.md`` and ``docs/*.md``)
for inline links and checks that every *relative* target resolves to an
existing file or directory (anchors are stripped; external ``http(s)``,
``mailto`` and absolute links are ignored).  Exit code 1 lists every dead
link; used by the CI docs job.

    python tools/check_links.py [file.md ...]
"""

from __future__ import annotations

import glob
import os
import re
import sys

#: inline markdown links ``[text](target)``; images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: schemes that are not intra-repo files
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_links(path: str) -> list[tuple[int, str]]:
    """All ``(line_number, target)`` links of one markdown file."""
    links: list[tuple[int, str]] = []
    with open(path, "r", encoding="utf-8") as handle:
        in_code_fence = False
        for lineno, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for match in _LINK.finditer(line):
                links.append((lineno, match.group(1)))
    return links


def check_file(path: str) -> list[str]:
    """Dead-link error messages for one markdown file."""
    errors: list[str] = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in iter_links(path):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        if target.startswith("/"):
            errors.append(
                f"{path}:{lineno}: absolute link {target!r} will not render "
                "on GitHub — use a relative path"
            )
            continue
        resolved = os.path.normpath(os.path.join(base, target.split("#", 1)[0]))
        if not os.path.exists(resolved):
            errors.append(f"{path}:{lineno}: dead link {target!r} -> {resolved}")
    return errors


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        args = [os.path.join(repo, "README.md")] + sorted(
            glob.glob(os.path.join(repo, "docs", "*.md"))
        )
    errors: list[str] = []
    checked = 0
    for path in args:
        if not os.path.exists(path):
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
        checked += 1
    for error in errors:
        print(error)
    print(f"checked {checked} file(s): {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
