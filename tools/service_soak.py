#!/usr/bin/env python
"""Service soak: one long-lived world, many tenants, many micro-batches.

The unit and differential suites exercise short tenant lifetimes; this
driver soaks the always-on service the way it is meant to run — a single
persistent world serving several tenants through many ingestion rounds
with periodic consistent-snapshot queries — and verifies at the end (and
at periodic sampled flush points) that every tenant's live state still
matches a cold ``replay()`` of its request log byte-identically: final
tuples, application query payloads and per-category comm volume.

    env PYTHONPATH=src python tools/service_soak.py --rounds 12 --tenants 3
    mpiexec -n 2 env PYTHONPATH=src python tools/service_soak.py --rounds 8

Without ``mpiexec`` the soak runs on a single-process world of the
requested backend (``sim`` by default); under ``mpiexec`` it serves from
the genuine ``MPI.COMM_WORLD`` with the ``mpi`` backend, every process
driving the identical SPMD request stream.  Exits 1 on the first
divergence between service state and its replayed log.  Used by the CI
soak leg; see ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.runtime import ServiceWorld, world_rank, world_size
from repro.scenarios import AppSpec, ReplayOptions, replay
from repro.service import GraphService, ServiceConfig

N = 64
N_RANKS = 4


def _fail(message: str) -> None:
    print(f"service_soak: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _check_oracle(tenant, world: ServiceWorld, *, what: str) -> None:
    """Service state must equal a cold replay of the tenant's log."""
    from dataclasses import replace

    live = tenant.result()
    log = replace(tenant.log, steps=list(tenant.log.steps))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        cold = replay(
            log,
            options=tenant.replay_options(),
            comm=world.communicator(tenant.comm.p),
        )
    for live_arr, cold_arr, axis in zip(live.final_a, cold.final_a, "rcv"):
        if not np.array_equal(live_arr, cold_arr):
            _fail(f"{what}: final tuples diverge on axis {axis!r}")
    if live.comm_signature() != cold.comm_signature():
        _fail(
            f"{what}: comm volume diverges "
            f"({live.comm_signature()} != {cold.comm_signature()})"
        )
    if live.applied_counts != cold.applied_counts:
        _fail(f"{what}: applied counts diverge")
    if len(live.app_results) != len(cold.app_results):
        _fail(f"{what}: app query counts diverge")
    for got, want in zip(live.app_results, cold.app_results):
        matches = (
            np.array_equal(got.payload[i], want.payload[i]) for i in range(3)
        ) if isinstance(want.payload, tuple) else (got.payload == want.payload,)
        if not all(matches):
            _fail(f"{what}: app payload diverges at {got.label!r}")


def soak(
    *,
    backend: str | None,
    rounds: int,
    n_tenants: int,
    seed: int,
    check_every: int,
) -> tuple[int, str]:
    """Run the soak; returns (oracle checks passed, resolved backend)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        world = ServiceWorld(backend)
    config = ServiceConfig(
        replay=ReplayOptions(n_ranks=N_RANKS), flush_max_requests=4,
        flush_max_delay=3.0,
    )
    checks = 0
    with GraphService(world, config=config) as service:
        tenants = []
        for i in range(n_tenants):
            app = None
            semiring = "plus_times"
            if i % 3 == 1:
                app = AppSpec(name="triangle")
            elif i % 3 == 2:
                app = AppSpec(name="sssp", sources=np.array([0, 1], dtype=np.int64))
                semiring = "min_plus"
            tenants.append(
                service.create_tenant(
                    f"tenant{i}", (N, N), seed=seed + i, app=app,
                    semiring_name=semiring,
                )
            )
        rngs = [np.random.default_rng(seed + 1000 + i) for i in range(n_tenants)]
        for r in range(rounds):
            for i, (tenant, rng) in enumerate(zip(tenants, rngs)):
                for _ in range(3):
                    rows = rng.integers(0, N, 6)
                    cols = rng.integers(0, N, 6)
                    if tenant.log.app is None and rng.random() < 0.2:
                        tenant.delete(rows, cols)
                    else:
                        keep = rows != cols
                        tenant.insert(
                            rows[keep], cols[keep], rng.random(int(keep.sum())) + 0.1
                        )
                if tenant.log.app is not None and r % 3 == 2:
                    if tenant.log.app.name == "triangle":
                        tenant.triangle_count()
                    else:
                        tenant.shortest_paths()
            service.advance_time(1.0)
            if (r + 1) % check_every == 0 or r == rounds - 1:
                for i, tenant in enumerate(tenants):
                    _check_oracle(
                        tenant, world, what=f"round {r + 1}, tenant{i}"
                    )
                    checks += 1
                if world_rank() == 0:
                    print(
                        f"service_soak: round {r + 1}/{rounds}: "
                        f"{n_tenants} tenants verified "
                        f"({sum(t.n_steps for t in tenants)} steps applied, "
                        f"{world.minted} communicators minted)"
                    )
    world.shutdown()
    return checks, world.backend_name


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=("sim", "mpi"),
        default=None,
        help="world backend; defaults to mpi under mpiexec, otherwise to "
        "the REPRO_BACKEND resolution (sim)",
    )
    parser.add_argument(
        "--rounds", type=int, default=12, help="ingestion rounds (default %(default)s)"
    )
    parser.add_argument(
        "--tenants", type=int, default=3, help="tenant count (default %(default)s)"
    )
    parser.add_argument(
        "--check-every",
        type=int,
        default=4,
        help="verify the oracle every N rounds (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=2022, help="base seed")
    args = parser.parse_args(argv)
    backend = args.backend
    if backend is None and world_size() > 1:
        backend = "mpi"
    checks, backend = soak(
        backend=backend,
        rounds=args.rounds,
        n_tenants=args.tenants,
        seed=args.seed,
        check_every=args.check_every,
    )
    if world_rank() == 0:
        print(
            f"service_soak: OK ({checks} oracle checks on backend {backend!r}, "
            f"world size {world_size()})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
