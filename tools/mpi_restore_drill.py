#!/usr/bin/env python
"""Two-job kill-and-restore drill for real multi-process worlds.

The loopback fault drills (``tests/test_fault_drills.py``) restart a
threaded world inside one process.  This driver exercises the *durable*
half of the contract across genuinely separate jobs: a first ``mpiexec``
job crashes mid-trace after persisting per-process snapshot files, then a
second, fresh ``mpiexec`` job resumes from those files and verifies the
continuation byte-identically against an uninterrupted reference run.

    mpiexec -n 2 env PYTHONPATH=src python tools/mpi_restore_drill.py crash --store /tmp/drill
    mpiexec -n 2 env PYTHONPATH=src python tools/mpi_restore_drill.py resume --store /tmp/drill

The ``crash`` phase replays the checkpointed trace with an injected
whole-world kill (``on_crash="raise"``), confirms every process persisted
its ``snapshot_default_p<rank>.npz`` and exits 0 — the simulated crash is
the *expected* outcome.  The ``resume`` phase starts from each process's
snapshot file (``resume_from=``), recomputes the uninterrupted reference
in-process and fails (exit 1) if final tuples or any non-``recovery``
communication category diverge.  Without ``mpiexec`` the driver runs the
same protocol on the single-rank emulated world, so the drill is also a
plain local smoke test.  Used by the CI fault-drill job; see
``docs/fault_tolerance.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.runtime import world_rank
from repro.runtime.faults import (
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
)
from repro.scenarios import (
    SCENARIO_GENERATORS,
    CheckpointStore,
    replay,
    with_checkpoint,
    with_crash,
)

SCENARIO = "grow_from_empty"
CHECKPOINT_AT = 3
CRASH_AT = 5


def _trace(seed: int):
    return with_checkpoint(SCENARIO_GENERATORS[SCENARIO](seed=seed), at=CHECKPOINT_AT)


def _replay(scenario, args, **kwargs):
    with warnings.catch_warnings():
        # the emulated-mpi fallback warns once when mpi4py is absent
        warnings.simplefilter("ignore", RuntimeWarning)
        return replay(
            scenario,
            backend="mpi",
            n_ranks=args.n_ranks,
            layout=args.layout,
            **kwargs,
        )


def run_crash(args: argparse.Namespace) -> int:
    """Phase 1: crash mid-trace, leaving durable snapshots behind."""
    store = CheckpointStore(args.store)
    drill = with_crash(_trace(args.seed), at=CRASH_AT)
    try:
        _replay(
            drill,
            args,
            checkpoint_store=store,
            faults=FaultInjector(FaultPlan()),
            on_crash="raise",
        )
    except SimulatedCrash as crash:
        rank = world_rank()
        path = os.path.join(args.store, f"snapshot_default_p{rank}.npz")
        if not os.path.exists(path):
            print(f"FAILED: crashed but no snapshot at {path}", file=sys.stderr)
            return 1
        print(f"rank {rank}: {crash} — snapshot persisted to {path}")
        return 0
    print("FAILED: the injected crash did not fire", file=sys.stderr)
    return 1


def run_resume(args: argparse.Namespace) -> int:
    """Phase 2: resume from the durable snapshots, verify byte-identity."""
    rank = world_rank()
    path = os.path.join(args.store, f"snapshot_default_p{rank}.npz")
    if not os.path.exists(path):
        print(f"FAILED: no snapshot at {path} (run the crash phase first)",
              file=sys.stderr)
        return 1
    # The snapshot fingerprints the *drill* trace (CrashStep included), so
    # the resume replays the same trace.  With no injector armed the crash
    # step is a no-op, making this the uninterrupted continuation; the
    # env var is cleared so a leftover REPRO_FAULTS cannot arm one.
    os.environ.pop(FAULTS_ENV_VAR, None)
    drill = with_crash(_trace(args.seed), at=CRASH_AT)
    recovered = _replay(drill, args, resume_from=path)
    reference = _replay(drill, args)
    for a, b in zip(reference.final_a, recovered.final_a):
        if not np.array_equal(a, b):
            print("FAILED: final tuples diverged after restore", file=sys.stderr)
            return 1
    signature = dict(recovered.comm_signature())
    recovery = signature.pop("recovery", (0, 0))
    if signature != dict(reference.comm_signature()):
        print("FAILED: non-recovery comm volume diverged", file=sys.stderr)
        return 1
    print(
        f"rank {rank}: resumed from {path} byte-identically "
        f"(recovery traffic: {recovery[0]} messages, {recovery[1]} bytes)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("phase", choices=("crash", "resume"))
    parser.add_argument(
        "--store", required=True, help="durable snapshot directory shared by both jobs"
    )
    parser.add_argument("--seed", type=int, default=2022, help="scenario seed")
    parser.add_argument("--layout", default="dhb", help="local layout (default dhb)")
    parser.add_argument(
        "--n-ranks", type=int, default=4, help="logical rank count (default 4)"
    )
    args = parser.parse_args(argv)
    if args.phase == "crash":
        return run_crash(args)
    return run_resume(args)


if __name__ == "__main__":
    raise SystemExit(main())
